// Package core assembles the ViTAL stack (Section 3): the Programming
// Layer's single-large-FPGA illusion, the Architecture Layer's virtual-block
// abstraction, the Compilation Layer's six-step flow (Fig. 5), and the
// System Layer's runtime controller. It is the public API the examples and
// benchmarks use.
package core

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"vital/internal/bitstream"
	"vital/internal/cluster"
	"vital/internal/fpga"
	"vital/internal/hls"
	"vital/internal/netlist"
	"vital/internal/partition"
	"vital/internal/pnr"
	"vital/internal/sched"
	"vital/internal/telemetry"
)

// Stack is one ViTAL installation over an FPGA cluster.
type Stack struct {
	Cluster    *cluster.Cluster
	Controller *sched.Controller
	// BlockCapacity is the virtual-block resource capacity (from the
	// Fig. 7 floorplan), Grid the physical-block site geometry.
	BlockCapacity netlist.Resources
	Grid          *fpga.Grid
	// MaxBlocksPerApp bounds the compilation-layer block search.
	MaxBlocksPerApp int

	// mu guards the fields below — the named-app registry the serving
	// tier (CompileSpec/ExecuteByName and the HTTP handler) maintains.
	mu   sync.Mutex
	apps map[string]*registeredApp
}

// registeredApp is one named compile the serving tier performed: the
// compiled artifacts plus the design key they were compiled from, kept so
// a repeat CompileSpec under the same name can detect whether it is a
// harmless retry (same design) or a conflict (different design).
type registeredApp struct {
	app  *CompiledApp
	dkey bitstream.CacheKey
}

// NewStack builds a stack over the given cluster (nil selects the paper's
// default four-board cluster).
func NewStack(c *cluster.Cluster) *Stack {
	return NewStackWithOptions(c, sched.Options{})
}

// NewStackWithOptions builds a stack with explicit controller options, e.g.
// sched.Options{VerifyOnDeploy: true} to re-check the architectural
// invariants after every deployment.
func NewStackWithOptions(c *cluster.Cluster, opts sched.Options) *Stack {
	if c == nil {
		c = cluster.Default()
	}
	dev := c.Boards[0].Device
	return &Stack{
		Cluster:         c,
		Controller:      sched.NewControllerWithOptions(c, opts),
		BlockCapacity:   dev.BlockResources(),
		Grid:            fpga.NewGrid(dev.BlockShape()),
		MaxBlocksPerApp: c.TotalBlocks(),
		apps:            map[string]*registeredApp{},
	}
}

// CompileOptions tunes the compilation flow.
type CompileOptions struct {
	// Workers bounds the per-virtual-block parallelism of steps 4 and 5
	// (local P&R and relocation validation): 0 means GOMAXPROCS, 1 forces
	// the serial flow. The compiled artifacts are bit-identical across
	// worker counts.
	Workers int
	// NoCache bypasses the controller's compile cache for this compile:
	// the full flow runs and its result is not stored.
	NoCache bool
}

// StageTimes is the Fig. 8 compile-time breakdown: tool time per stage of
// the Fig. 5 flow. For the per-block stages (LocalPNR, Relocation) this is
// the sum of per-block times, not wall clock — the breakdown measures how
// much work each tool does, so it is invariant under the worker count.
// CompiledApp.Wall carries the elapsed wall clock.
type StageTimes struct {
	Synthesis    time.Duration
	Partition    time.Duration
	InterfaceGen time.Duration
	LocalPNR     time.Duration
	Relocation   time.Duration
	GlobalPNR    time.Duration
}

// Total sums all stages.
func (st StageTimes) Total() time.Duration {
	return st.Synthesis + st.Partition + st.InterfaceGen + st.LocalPNR + st.Relocation + st.GlobalPNR
}

// CustomToolFraction returns the share of compile time spent in ViTAL's
// custom tools (partition + interface generation + relocation) — the
// paper reports 1.6% on average, with P&R dominating at 83.9%.
func (st StageTimes) CustomToolFraction() float64 {
	t := st.Total()
	if t == 0 {
		return 0
	}
	return float64(st.Partition+st.InterfaceGen+st.Relocation) / float64(t)
}

// PNRFraction returns the share spent in the reused commercial P&R stages.
func (st StageTimes) PNRFraction() float64 {
	t := st.Total()
	if t == 0 {
		return 0
	}
	return float64(st.LocalPNR+st.GlobalPNR) / float64(t)
}

// ChannelSpec is one generated latency-insensitive channel: a cut net
// mapped onto the inter-block interface (Section 3.3, step 3).
type ChannelSpec struct {
	Net       netlist.NetID
	WidthBits int
	SrcBlock  int
	DstBlocks []int
}

// CompiledApp is an application after the offline compilation flow:
// position-independent virtual blocks ready for runtime placement.
type CompiledApp struct {
	Name      string
	Netlist   *netlist.Netlist
	Partition *partition.Result
	// BlockResults holds each virtual block's local P&R result.
	BlockResults []*pnr.BlockResult
	// Channels is the generated latency-insensitive interface.
	Channels []ChannelSpec
	// Bitstreams holds one relocatable image per virtual block.
	Bitstreams []*bitstream.Bitstream
	// Global is the stitched design.
	Global *pnr.GlobalResult
	// Times is the Fig. 8 stage breakdown; FminMHz the worst block Fmax.
	Times   StageTimes
	FminMHz float64
	// Wall is the compile's elapsed wall clock (≤ Times.Total() when the
	// per-block stages ran in parallel); CacheHit reports that steps 2–6
	// were served from the controller's compile cache.
	Wall     time.Duration
	CacheHit bool
}

// Blocks returns the number of virtual blocks.
func (a *CompiledApp) Blocks() int { return a.Partition.NumBlocks }

// partitionSeed drives the partitioner's stochastic stages; it is fixed so
// compiles are reproducible, and it is part of the compile cache key.
const partitionSeed = 11

// Compile runs the full Fig. 5 flow on a design written against the
// Programming Layer and registers the result with the system controller's
// bitstream database. Per-block work runs across GOMAXPROCS workers and
// repeat compiles are served from the controller's compile cache; use
// CompileWithOptions to tune either.
func (s *Stack) Compile(d *hls.Design) (*CompiledApp, error) {
	return s.CompileWithOptions(context.Background(), d, CompileOptions{})
}

// CompileWithOptions is Compile with explicit cancellation and options.
//
// Steps 4 (local P&R) and 5 (relocation validation) are embarrassingly
// parallel across virtual blocks — the blocks are identical and position
// independent (Section 3.2) — and run on a bounded worker pool; the first
// error cancels the rest. The flow is deterministic, so the artifacts are
// bit-identical whatever the worker count.
//
// Before doing any work the controller's compile cache is consulted, at
// two levels. The authoritative key is content-addressed over the
// synthesized netlist's structure plus the compile parameters (block
// capacity, partition seed, block search bound, grid shape — never a
// name). A cheaper pre-synthesis key over the design's operator-graph
// structure is registered as an alias for it, so recompiling a design the
// cluster has seen — many tenants deploying the same accelerator under
// different names — skips the whole flow, synthesis included: a hash, a
// lookup, and a rebranding clone of the cached artifacts.
// Every compile runs under a root "compile" span in the controller's
// tracer, with one child span per Fig. 5 stage and one per block inside
// the parallel stages, so a retrieved trace reproduces the Fig. 8
// breakdown and shows the fan-out shape of steps 4 and 5. Wall time lands
// in the vital_compile_seconds{cache=hit|miss} histogram and per-stage
// wall time in vital_compile_stage_seconds{stage=...}.
func (s *Stack) CompileWithOptions(ctx context.Context, d *hls.Design, opts CompileOptions) (out *CompiledApp, err error) {
	wallStart := time.Now()
	// StartSpan continues the request's trace when ctx carries one (a
	// gateway submit arriving through the instrumented /compile route);
	// an untraced caller still gets a fresh root, as before.
	sp := s.Controller.Tracer.StartSpan(ctx, "compile",
		telemetry.String("app", d.Name),
		telemetry.Int("workers", opts.Workers))
	defer func() {
		result := "miss"
		if out != nil && out.CacheHit {
			result = "hit"
		}
		sp.SetAttr("cache", result)
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		traceID := sp.TraceID()
		sp.End()
		s.Controller.Reg.Histogram("vital_compile_seconds",
			"End-to-end compile wall time by cache outcome.", nil,
			telemetry.L("cache", result)).ObserveExemplar(time.Since(wallStart).Seconds(), traceID)
	}()
	app := &CompiledApp{Name: d.Name}

	cache := s.Controller.Cache
	useCache := cache != nil && !opts.NoCache
	var dkey bitstream.CacheKey
	if useCache {
		// Fast path: a design structurally identical to one already
		// compiled resolves to its compile key before synthesis runs.
		csp := sp.Child("cache.lookup", telemetry.String("key", "design"))
		dkey = s.designKey(d)
		key, ok := cache.Resolve(dkey)
		var v interface{}
		if ok {
			v, ok = cache.Get(key)
		}
		csp.SetAttr("hit", strconv.FormatBool(ok))
		csp.End()
		if ok {
			return s.serveCacheHit(v.(*CompiledApp), d.Name, wallStart)
		}
	}

	// Step 1 — synthesis (reused commercial front end).
	t0 := time.Now()
	ssp := sp.Child("synthesis")
	synth, err := hls.Synthesize(d)
	ssp.End()
	s.stageHist("synthesis").ObserveSince(t0)
	if err != nil {
		return nil, fmt.Errorf("core: synthesis of %s: %w", d.Name, err)
	}
	app.Netlist = synth.Netlist
	app.Times.Synthesis = time.Since(t0)

	var key bitstream.CacheKey
	if useCache {
		key = bitstream.CompileKey(app.Netlist, s.BlockCapacity, partitionSeed, s.MaxBlocksPerApp, s.Grid.Shape)
		csp := sp.Child("cache.lookup", telemetry.String("key", "netlist"))
		v, ok := cache.Get(key)
		csp.SetAttr("hit", strconv.FormatBool(ok))
		csp.End()
		if ok {
			// Different design structure, same netlist: remember the new
			// alias so the next compile of this design skips synthesis.
			cache.AddAlias(dkey, key)
			hit, err := s.serveCacheHit(v.(*CompiledApp), d.Name, wallStart)
			if err != nil {
				return nil, err
			}
			hit.Netlist = app.Netlist
			hit.Times.Synthesis = app.Times.Synthesis
			return hit, nil
		}
	}

	// Step 2 — partition (custom tool, Section 4).
	t0 = time.Now()
	ssp = sp.Child("partition")
	part, err := partition.Auto(app.Netlist, partition.Config{
		BlockCapacity: s.BlockCapacity,
		Seed:          partitionSeed,
	}, s.MaxBlocksPerApp)
	ssp.End()
	s.stageHist("partition").ObserveSince(t0)
	if err != nil {
		return nil, fmt.Errorf("core: partitioning %s: %w", d.Name, err)
	}
	app.Partition = part
	app.Times.Partition = time.Since(t0)

	// Step 3 — latency-insensitive interface generation (custom tool).
	t0 = time.Now()
	ssp = sp.Child("interface_gen")
	app.Channels = generateInterface(app.Netlist, part)
	ssp.End()
	s.stageHist("interface_gen").ObserveSince(t0)
	app.Times.InterfaceGen = time.Since(t0)

	// Step 4 — local place-and-route (reused commercial back end), in
	// parallel across virtual blocks. The stage time is the summed
	// per-block tool time, so the Fig. 8 breakdown does not depend on the
	// worker count. The stage span carries one pnr.block child per virtual
	// block (opened by the workers via the span-carrying context).
	t0 = time.Now()
	ssp = sp.Child("local_pnr", telemetry.Int("blocks", part.NumBlocks))
	blocks, err := pnr.LocalPlaceAndRouteOpts(telemetry.ContextWithSpan(ctx, ssp),
		app.Netlist, part.CellBlock, part.NumBlocks, s.Grid,
		pnr.LocalPNROptions{Workers: opts.Workers})
	ssp.End()
	s.stageHist("local_pnr").ObserveSince(t0)
	if err != nil {
		return nil, fmt.Errorf("core: local P&R of %s: %w", d.Name, err)
	}
	app.BlockResults = blocks
	app.FminMHz = blocks[0].Timing.FmaxMHz
	for _, b := range blocks {
		app.Times.LocalPNR += b.Elapsed
		if b.Timing.FmaxMHz < app.FminMHz {
			app.FminMHz = b.Timing.FmaxMHz
		}
	}

	// Step 5 — relocation (custom tool, RapidWright-style): emit each
	// virtual block's image at the canonical base; relocatability to every
	// physical block is what the runtime exploits. Independent per block,
	// so it shares the step-4 worker pool shape.
	device := s.Cluster.Boards[0].Device
	probe := device.Blocks()[device.NumBlocks()-1]
	app.Bitstreams = make([]*bitstream.Bitstream, len(blocks))
	relocElapsed := make([]time.Duration, len(blocks))
	t0 = time.Now()
	ssp = sp.Child("relocation", telemetry.Int("blocks", len(blocks)))
	err = pnr.ParallelBlocks(telemetry.ContextWithSpan(ctx, ssp), len(blocks), opts.Workers, func(ctx context.Context, i int) error {
		bsp := telemetry.StartChild(ctx, "relocate.block", telemetry.Int("block", i))
		defer bsp.End()
		start := time.Now()
		img := bitstream.FromPlacement(d.Name, i, blocks[i].Placement, fpga.BlockRef{})
		// Exercise a relocation round trip, as the flow does to validate
		// position independence.
		moved, err := img.Relocate(probe, device)
		if err != nil {
			return fmt.Errorf("core: relocating %s/vb%d: %w", d.Name, i, err)
		}
		if img, err = moved.Relocate(fpga.BlockRef{}, device); err != nil {
			return fmt.Errorf("core: relocating %s/vb%d back: %w", d.Name, i, err)
		}
		app.Bitstreams[i] = img
		relocElapsed[i] = time.Since(start)
		return nil
	})
	ssp.End()
	s.stageHist("relocation").ObserveSince(t0)
	if err != nil {
		return nil, err
	}
	for _, e := range relocElapsed {
		app.Times.Relocation += e
	}

	// Step 6 — global place-and-route (reused commercial back end).
	t0 = time.Now()
	ssp = sp.Child("global_pnr")
	app.Global = pnr.GlobalPlaceAndRoute(app.Netlist, part.CellBlock, part.NumBlocks)
	ssp.End()
	s.stageHist("global_pnr").ObserveSince(t0)
	app.Times.GlobalPNR = time.Since(t0)

	ssp = sp.Child("store")
	if err := s.Controller.Bitstreams.Store(d.Name, app.Bitstreams); err != nil {
		ssp.End()
		return nil, fmt.Errorf("core: storing bitstreams of %s: %w", d.Name, err)
	}
	s.Controller.Bitstreams.StoreChannels(d.Name, blockEdges(app.Channels))
	if useCache {
		// Cache a private clone: entries are shared across tenants and
		// treated as immutable, so the caller's app must not alias them.
		cache.Put(key, app.cloneFor(app.Name))
		cache.AddAlias(dkey, key)
	}
	ssp.End()
	app.Wall = time.Since(wallStart)
	return app, nil
}

// stageHist returns the per-stage compile-time histogram — the Fig. 8
// breakdown as a live metric.
func (s *Stack) stageHist(stage string) *telemetry.Histogram {
	return s.Controller.Reg.Histogram("vital_compile_stage_seconds",
		"Per-stage compile wall time (Fig. 8 breakdown).", nil,
		telemetry.L("stage", stage))
}

// serveCacheHit turns a cache entry into this tenant's compiled app: a
// rebranding clone (frames shared, never copied) registered with the
// bitstream database. The entry's netlist is shared read-only — its net
// names carry the original tenant's design name, which is cosmetic.
// Times is zeroed: no tool ran; Wall records what the hit actually cost.
func (s *Stack) serveCacheHit(entry *CompiledApp, name string, wallStart time.Time) (*CompiledApp, error) {
	hit := entry.cloneFor(name)
	hit.Times = StageTimes{}
	hit.CacheHit = true
	if err := s.Controller.Bitstreams.Store(name, hit.Bitstreams); err != nil {
		return nil, fmt.Errorf("core: storing bitstreams of %s: %w", name, err)
	}
	s.Controller.Bitstreams.StoreChannels(name, blockEdges(hit.Channels))
	hit.Wall = time.Since(wallStart)
	return hit, nil
}

// blockEdges flattens the compiled channel specs into the directed
// block-to-block edge list the runtime's placement scorer consumes.
func blockEdges(specs []ChannelSpec) []bitstream.BlockEdge {
	var edges []bitstream.BlockEdge
	for _, sp := range specs {
		for _, dst := range sp.DstBlocks {
			edges = append(edges, bitstream.BlockEdge{Src: sp.SrcBlock, Dst: dst})
		}
	}
	return edges
}

// cloneFor copies the compiled artifacts under a new application name:
// top-level slices are fresh, bitstreams are rebranded (frames shared —
// the payload never encodes the name), and the deep structures
// (partition, block results, global result) are shared read-only.
func (a *CompiledApp) cloneFor(name string) *CompiledApp {
	c := *a
	c.Name = name
	c.BlockResults = append([]*pnr.BlockResult(nil), a.BlockResults...)
	c.Channels = append([]ChannelSpec(nil), a.Channels...)
	c.Bitstreams = make([]*bitstream.Bitstream, len(a.Bitstreams))
	for i, b := range a.Bitstreams {
		c.Bitstreams[i] = b.Rebrand(name)
	}
	return &c
}

// generateInterface derives the latency-insensitive channel set from the
// partition's cut nets: one channel per cut net, endpoints at the driver
// block and every foreign sink block.
func generateInterface(n *netlist.Netlist, part *partition.Result) []ChannelSpec {
	var specs []ChannelSpec
	for i := range n.Nets {
		t := &n.Nets[i]
		if t.Driver == netlist.NoCell {
			continue
		}
		src := part.CellBlock[t.Driver]
		var dsts []int
		seen := map[int]bool{src: true}
		for _, s := range t.Sinks {
			b := part.CellBlock[s]
			if !seen[b] {
				seen[b] = true
				dsts = append(dsts, b)
			}
		}
		if len(dsts) == 0 {
			continue
		}
		specs = append(specs, ChannelSpec{Net: t.ID, WidthBits: t.Width, SrcBlock: src, DstBlocks: dsts})
	}
	return specs
}

// Deploy places a compiled application onto the cluster through the system
// controller (runtime resource allocation, Section 3.4).
func (s *Stack) Deploy(app *CompiledApp, memQuota uint64) (*sched.Deployment, error) {
	return s.Controller.Deploy(app.Name, memQuota)
}

// Undeploy stops an application.
func (s *Stack) Undeploy(app *CompiledApp) error {
	return s.Controller.Undeploy(app.Name)
}
