package core

import (
	"context"
	"errors"
	"testing"
)

func TestCompileSpecIdempotentAndConflict(t *testing.T) {
	s := NewStack(nil)
	defer s.Controller.Close()
	ctx := context.Background()

	app, err := s.CompileSpec(ctx, "lenet-S", "acct.lenet")
	if err != nil {
		t.Fatal(err)
	}
	if app.Name != "acct.lenet" || app.CacheHit {
		t.Fatalf("first compile: name=%q hit=%v", app.Name, app.CacheHit)
	}
	if got := s.Controller.CacheStats().Misses; got != 1 {
		t.Fatalf("misses after first compile = %d, want 1", got)
	}

	// Same (app, design): the registered artifacts come back, nothing runs.
	again, err := s.CompileSpec(ctx, "lenet-S", "acct.lenet")
	if err != nil {
		t.Fatal(err)
	}
	if again != app {
		t.Fatal("idempotent repeat returned a different app object")
	}
	if got := s.Controller.CacheStats().Misses; got != 1 {
		t.Fatalf("misses after repeat = %d, want 1", got)
	}

	// Same design under a new name: a cache hit and a rebrand, no synthesis.
	other, err := s.CompileSpec(ctx, "lenet-S", "other.lenet")
	if err != nil {
		t.Fatal(err)
	}
	if !other.CacheHit {
		t.Fatal("known design under a new name was not a cache hit")
	}
	if got := s.Controller.CacheStats().Misses; got != 1 {
		t.Fatalf("misses after rename = %d, want 1", got)
	}
	k1, ok1 := s.DesignKeyOf("acct.lenet")
	k2, ok2 := s.DesignKeyOf("other.lenet")
	if !ok1 || !ok2 || k1 != k2 {
		t.Fatalf("design keys differ for the same design: %v %v", k1, k2)
	}

	// Re-binding the name to a structurally different design is refused.
	if _, err := s.CompileSpec(ctx, "lenet-M", "acct.lenet"); !errors.Is(err, ErrDesignConflict) {
		t.Fatalf("rebind error = %v, want ErrDesignConflict", err)
	}

	// Bad specs are rejected before anything registers.
	if _, err := s.CompileSpec(ctx, "warp9-S", "x"); err == nil {
		t.Fatal("bad benchmark accepted")
	}
	if _, ok := s.App("x"); ok {
		t.Fatal("failed compile left a registry entry")
	}

	// An empty app name defaults to the spec string.
	def, err := s.CompileSpec(ctx, "svhn-S", "")
	if err != nil {
		t.Fatal(err)
	}
	if def.Name != "svhn-S" {
		t.Fatalf("defaulted name = %q, want svhn-S", def.Name)
	}
}

func TestExecuteByName(t *testing.T) {
	s := NewStack(nil)
	defer s.Controller.Close()

	if _, err := s.ExecuteByName("ghost", 1); !errors.Is(err, ErrUnknownApp) {
		t.Fatalf("unknown app error = %v, want ErrUnknownApp", err)
	}

	app, err := s.CompileSpec(context.Background(), "lenet-S", "t0.lenet-S")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecuteByName("t0.lenet-S", 1); !errors.Is(err, ErrNotDeployed) {
		t.Fatalf("undeployed app error = %v, want ErrNotDeployed", err)
	}

	if _, err := s.Deploy(app, 0); err != nil {
		t.Fatal(err)
	}
	stats, err := s.ExecuteByName("t0.lenet-S", 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats == nil || stats.Tokens != 3 {
		t.Fatalf("execution stats = %+v", stats)
	}
}
