package core

import (
	"context"
	"testing"
	"time"

	"vital/internal/telemetry"
	"vital/internal/workload"
)

// compileTraced runs one compile and returns its app and the full trace the
// tracer recorded for it.
func compileTraced(t *testing.T, s *Stack, name string, opts CompileOptions) (*CompiledApp, telemetry.TraceData) {
	t.Helper()
	spec, err := workload.ParseSpec(name)
	if err != nil {
		t.Fatal(err)
	}
	app, err := s.CompileWithOptions(context.Background(), workload.BuildDesign(spec), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range s.Controller.Tracer.Recent(0) {
		if ts.Name == "compile" && ts.Attrs["app"] == name {
			td, ok := s.Controller.Tracer.Get(ts.ID)
			if !ok {
				t.Fatalf("trace %s listed but not retrievable", ts.ID)
			}
			return app, td
		}
	}
	t.Fatalf("no compile trace for %q", name)
	return nil, telemetry.TraceData{}
}

// TestCompileTraceBreakdown: compiling a Table 2 application leaves a
// retrievable trace whose stage spans reproduce the Fig. 8 compile-time
// breakdown — with one worker the stage span walls match StageTimes within
// tolerance — and whose per-block spans hang off the parallel stages'
// spans, which hang off the compile root.
func TestCompileTraceBreakdown(t *testing.T) {
	s := NewStack(nil)
	app, td := compileTraced(t, s, "lenet-M", CompileOptions{Workers: 1})

	spans := map[int64]telemetry.SpanData{}
	byName := map[string][]telemetry.SpanData{}
	var root telemetry.SpanData
	for _, sp := range td.AllSpans {
		spans[sp.ID] = sp
		byName[sp.Name] = append(byName[sp.Name], sp)
		if sp.Parent == 0 {
			root = sp
		}
	}
	if root.Name != "compile" || root.Attrs["app"] != "lenet-M" || root.Attrs["cache"] != "miss" {
		t.Fatalf("root span = %+v", root)
	}

	// Each Fig. 5 stage appears exactly once, directly under the root, and
	// its span wall matches the StageTimes entry (the span brackets the
	// timer, so it can only be slightly wider).
	stageTimes := map[string]time.Duration{
		"synthesis":     app.Times.Synthesis,
		"partition":     app.Times.Partition,
		"interface_gen": app.Times.InterfaceGen,
		"local_pnr":     app.Times.LocalPNR,
		"relocation":    app.Times.Relocation,
		"global_pnr":    app.Times.GlobalPNR,
	}
	var spanSum time.Duration
	for stage, want := range stageTimes {
		got := byName[stage]
		if len(got) != 1 {
			t.Fatalf("%d %s spans, want 1", len(got), stage)
		}
		if got[0].Parent != root.ID {
			t.Fatalf("%s span parent = %d, want compile root %d", stage, got[0].Parent, root.ID)
		}
		// With Workers:1 the per-block stage times are also wall time, so
		// every stage span must cover its StageTimes entry with only
		// scheduling/pool overhead on top.
		slack := want/5 + 20*time.Millisecond
		if got[0].Duration+slack < want || got[0].Duration > want+slack {
			t.Errorf("%s span duration = %v, StageTimes entry = %v (slack %v)", stage, got[0].Duration, want, slack)
		}
		spanSum += got[0].Duration
	}
	total := app.Times.Total()
	slack := total/5 + 50*time.Millisecond
	if spanSum+slack < total || spanSum > total+slack {
		t.Errorf("stage spans sum to %v, StageTimes.Total() = %v (slack %v)", spanSum, total, slack)
	}

	// The per-block spans of steps 4 and 5 share their stage span as parent
	// (the fan-out shape), one per virtual block.
	localPNR, reloc := byName["local_pnr"][0], byName["relocation"][0]
	if n := len(byName["pnr.block"]); n != app.Blocks() {
		t.Fatalf("%d pnr.block spans, want %d", n, app.Blocks())
	}
	for _, sp := range byName["pnr.block"] {
		if sp.Parent != localPNR.ID {
			t.Fatalf("pnr.block span parent = %d, want local_pnr %d", sp.Parent, localPNR.ID)
		}
	}
	if n := len(byName["relocate.block"]); n != app.Blocks() {
		t.Fatalf("%d relocate.block spans, want %d", n, app.Blocks())
	}
	for _, sp := range byName["relocate.block"] {
		if sp.Parent != reloc.ID {
			t.Fatalf("relocate.block span parent = %d, want relocation %d", sp.Parent, reloc.ID)
		}
	}

	// The compile fed the latency histograms: one miss observation and one
	// observation per stage.
	found := map[string]bool{}
	for _, fam := range s.Controller.Reg.Snapshot() {
		found[fam.Name] = true
	}
	if !found["vital_compile_seconds"] || !found["vital_compile_stage_seconds"] {
		t.Fatalf("compile histograms missing from registry: %v", found)
	}
}

// TestCompileTraceParallelWorkers: with a parallel worker pool the per-block
// spans still nest under their stage span — the trace shows fan-out, not
// orphaned spans.
func TestCompileTraceParallelWorkers(t *testing.T) {
	s := NewStack(nil)
	app, td := compileTraced(t, s, "lenet-M", CompileOptions{Workers: 4, NoCache: true})
	var localPNRID int64
	for _, sp := range td.AllSpans {
		if sp.Name == "local_pnr" {
			localPNRID = sp.ID
		}
	}
	if localPNRID == 0 {
		t.Fatal("no local_pnr span")
	}
	blocks := 0
	for _, sp := range td.AllSpans {
		if sp.Name == "pnr.block" {
			blocks++
			if sp.Parent != localPNRID {
				t.Fatalf("pnr.block parent = %d, want %d", sp.Parent, localPNRID)
			}
		}
	}
	if blocks != app.Blocks() {
		t.Fatalf("%d pnr.block spans, want %d", blocks, app.Blocks())
	}
}

// TestCompileTraceCacheHit: a repeat compile is served from the cache and
// its trace says so — a cache.lookup child with hit=true and a root tagged
// cache=hit, with no stage spans.
func TestCompileTraceCacheHit(t *testing.T) {
	s := NewStack(nil)
	compileTraced(t, s, "lenet-S", CompileOptions{})
	_, td := compileTraced(t, s, "lenet-S", CompileOptions{})
	if td.Attrs["cache"] != "hit" {
		t.Fatalf("repeat compile root attrs = %v, want cache=hit", td.Attrs)
	}
	var sawLookup bool
	for _, sp := range td.AllSpans {
		switch sp.Name {
		case "cache.lookup":
			sawLookup = true
			if sp.Attrs["hit"] != "true" {
				t.Fatalf("cache.lookup attrs = %v", sp.Attrs)
			}
		case "synthesis", "partition", "local_pnr":
			t.Fatalf("cache hit ran stage %s", sp.Name)
		}
	}
	if !sawLookup {
		t.Fatal("no cache.lookup span in cache-hit trace")
	}
}
