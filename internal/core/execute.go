package core

import (
	"fmt"

	"vital/internal/interconnect"
	"vital/internal/sched"
)

// ExecutionStats reports one simulated execution of a deployed application
// over the latency-insensitive interface.
type ExecutionStats struct {
	// Tokens is the number of firings completed by every virtual block.
	Tokens uint64
	// Cycles is the simulated cycle count.
	Cycles uint64
	// GatedCycles is the total block-cycles user logic spent clock-gated
	// waiting on the interface — its stall overhead.
	GatedCycles uint64
	// NumActors is the number of virtual-block actors simulated.
	NumActors int
	// Channels counts the instantiated channels per link class.
	IntraDie, InterDie, InterFPGA int
	// DRAM traffic through the service region's virtual-memory path
	// (monitored, translated accesses in the app's protection domain).
	DRAMReadBytes, DRAMWriteBytes uint64
	// DMASeconds is the modeled DRAM transfer time at the board's
	// bandwidth (overlapped with compute in a real run).
	DMASeconds float64
	// Traffic is the per-class / per-ring-segment data-plane breakdown of
	// the run (also folded into the controller's metrics registry).
	Traffic interconnect.TrafficReport
}

// OverheadFraction is gated block-cycles over total block-cycles (the paper
// measures the interface overhead at < 0.03% of full execution time).
func (e ExecutionStats) OverheadFraction() float64 {
	if e.Cycles == 0 || e.NumActors == 0 {
		return 0
	}
	return float64(e.GatedCycles) / float64(e.Cycles*uint64(e.NumActors))
}

// Execute runs the deployed application for the given number of tokens on
// the cycle-level interconnect model. Each virtual block becomes a dataflow
// actor firing once per token; each generated channel is instantiated on
// the link class implied by the runtime placement (same die, cross-die, or
// cross-FPGA) — the same compiled design works for every placement, which
// is the latency-insensitive interface's purpose. Feedback channels are
// buffered and primed per Section 3.5.1 so the system provably cannot
// deadlock.
func (s *Stack) Execute(app *CompiledApp, dep *sched.Deployment, tokens uint64) (*ExecutionStats, error) {
	if dep == nil {
		return nil, fmt.Errorf("core: nil deployment")
	}
	nb := app.Blocks()
	if len(dep.Blocks) != nb {
		return nil, fmt.Errorf("core: deployment has %d blocks, app has %d", len(dep.Blocks), nb)
	}
	stats := &ExecutionStats{NumActors: nb}
	actors := make([]*interconnect.Actor, nb)
	for b := 0; b < nb; b++ {
		actors[b] = &interconnect.Actor{Name: fmt.Sprintf("vb%d", b), Work: tokens}
	}

	// Identify feedback edges in the block-level channel graph: channels
	// closing a cycle get buffers (elision only applies to feed-forward
	// deterministic paths) and one initial token (Section 3.5.1).
	back := findBackEdges(nb, app.Channels)

	// All inter-FPGA channels contend for the shared 100 Gbps ring; a
	// flit loads every segment it traverses, and the runtime routes each
	// channel the shorter way around.
	numBoards := len(s.Cluster.Boards)
	ringSegments := numBoards
	if ringSegments < 1 {
		ringSegments = 1
	}
	ring, err := interconnect.NewSegmentedRing(interconnect.RingBitsPerCycle, ringSegments)
	if err != nil {
		return nil, err
	}

	var channels []*interconnect.Channel
	for _, spec := range app.Channels {
		srcLoc := dep.Blocks[spec.SrcBlock]
		for _, dst := range spec.DstBlocks {
			dstLoc := dep.Blocks[dst]
			class := interconnect.IntraDie
			switch {
			case srcLoc.Board != dstLoc.Board:
				class = interconnect.InterFPGA
				stats.InterFPGA++
			case srcLoc.Die != dstLoc.Die:
				class = interconnect.InterDie
				stats.InterDie++
			default:
				stats.IntraDie++
			}
			params := interconnect.DefaultParams(class)
			// The channel carries the cut net's actual width: a 256-bit
			// stream consumes half a ring cycle, not a whole flit.
			if spec.WidthBits > 0 && spec.WidthBits < params.WidthBits {
				params.WidthBits = spec.WidthBits
			}
			isBack := back[edge{spec.SrcBlock, dst}]
			if isBack {
				// Feedback channels keep their buffers and are initialized
				// with enough tokens to cover the loop's round trip, so a
				// cycle sustains one firing per clock (Section 3.5.1:
				// "buffers in the interface are correctly initialized").
				depth := params.LatencyCycles + 8
				if params.FIFODepth < depth {
					params.FIFODepth = depth
				}
			}
			ch, err := interconnect.New(params)
			if err != nil {
				return nil, fmt.Errorf("core: channel on net %d: %w", spec.Net, err)
			}
			if isBack {
				if err := ch.Prime(params.LatencyCycles + 4); err != nil {
					return nil, fmt.Errorf("core: priming feedback channel: %w", err)
				}
			}
			if class == interconnect.InterFPGA {
				segments, cw := interconnect.PathSegments(numBoards, srcLoc.Board, dstLoc.Board)
				if err := ring.AttachPath(ch, segments, cw); err != nil {
					return nil, err
				}
			}
			channels = append(channels, ch)
			actors[spec.SrcBlock].Outs = append(actors[spec.SrcBlock].Outs, ch)
			actors[dst].Ins = append(actors[dst].Ins, ch)
		}
	}
	sys := &interconnect.System{Actors: actors, Channels: channels, Rings: []*interconnect.Ring{ring}}
	maxCycles := tokens*200 + 1_000_000
	cycles, err := sys.Run(maxCycles)
	if err != nil {
		return nil, fmt.Errorf("core: executing %s: %w", app.Name, err)
	}
	if !sys.AllDone() {
		return nil, fmt.Errorf("core: executing %s: cycle budget exhausted", app.Name)
	}
	stats.Cycles = cycles
	stats.Tokens = tokens
	for _, a := range actors {
		if a.Fired() < stats.Tokens {
			stats.Tokens = a.Fired()
		}
		stats.GatedCycles += a.Gated
	}
	stats.Traffic = sys.Traffic()
	s.Controller.RecordTraffic(app.Name, stats.Traffic)
	if err := s.dmaTraffic(app, dep, stats); err != nil {
		return nil, err
	}
	return stats, nil
}

// tokenBytes is the payload each token moves to/from DRAM (one 512-bit
// input burst and one output burst per firing).
const tokenBytes = 64

// dmaTraffic streams the run's inputs and outputs through the service
// region's virtual-memory path on the app's primary board: allocation in
// the app's domain, translated and monitored accesses, and a transfer-time
// estimate at the DRAM's bandwidth. Deployments without a memory domain
// (unit tests driving the controller directly) skip this.
func (s *Stack) dmaTraffic(app *CompiledApp, dep *sched.Deployment, stats *ExecutionStats) error {
	board := s.Cluster.Boards[dep.Blocks[0].Board]
	domain, ok := board.Mem.Domain(app.Name)
	if !ok {
		return nil
	}
	bytes := stats.Tokens * tokenBytes
	if bytes == 0 {
		return nil
	}
	// Stream through a bounded window so arbitrarily long runs respect the
	// domain's quota.
	window := uint64(domain.QuotaBytes / 4)
	if window == 0 {
		return nil
	}
	if bytes < window {
		window = bytes
	}
	va, err := board.Mem.Alloc(app.Name, window)
	if err != nil {
		return fmt.Errorf("core: DMA buffer for %s: %w", app.Name, err)
	}
	for moved := uint64(0); moved < bytes; moved += window {
		n := window
		if bytes-moved < n {
			n = bytes - moved
		}
		if err := board.Mem.Access(app.Name, va, n, false); err != nil {
			return fmt.Errorf("core: DMA read for %s: %w", app.Name, err)
		}
		if err := board.Mem.Access(app.Name, va, n, true); err != nil {
			return fmt.Errorf("core: DMA write for %s: %w", app.Name, err)
		}
		stats.DRAMReadBytes += n
		stats.DRAMWriteBytes += n
	}
	stats.DMASeconds = board.Mem.DRAM.TransferTime(stats.DRAMReadBytes + stats.DRAMWriteBytes)
	return nil
}

type edge struct{ src, dst int }

// findBackEdges DFS-classifies block-graph edges; an edge into a vertex on
// the current DFS stack closes a cycle.
func findBackEdges(nb int, specs []ChannelSpec) map[edge]bool {
	adj := make([][]int, nb)
	for _, sp := range specs {
		adj[sp.SrcBlock] = append(adj[sp.SrcBlock], sp.DstBlocks...)
	}
	back := map[edge]bool{}
	state := make([]uint8, nb) // 0 unvisited, 1 on stack, 2 done
	var dfs func(v int)
	dfs = func(v int) {
		state[v] = 1
		for _, w := range adj[v] {
			switch state[w] {
			case 0:
				dfs(w)
			case 1:
				back[edge{v, w}] = true
			}
		}
		state[v] = 2
	}
	for v := 0; v < nb; v++ {
		if state[v] == 0 {
			dfs(v)
		}
	}
	return back
}
