package core

import (
	"crypto/sha256"
	"fmt"

	"vital/internal/bitstream"
	"vital/internal/fpga"
	"vital/internal/hls"
	"vital/internal/netlist"
)

// CompileParams are the stack parameters that, together with a design's
// structure, determine the compiled artifacts — everything the design key
// hashes besides the design itself. The admission gateway fetches them
// from the backend (GET /compileparams) so it can compute the same
// content-addressed key the backend's cache uses, without compiling
// anything.
type CompileParams struct {
	BlockCapacity netlist.Resources `json:"block_capacity"`
	PartitionSeed int64             `json:"partition_seed"`
	MaxBlocks     int               `json:"max_blocks"`
	Shape         fpga.BlockShape   `json:"shape"`
}

// CompileParams returns this stack's compile parameters.
func (s *Stack) CompileParams() CompileParams {
	return CompileParams{
		BlockCapacity: s.BlockCapacity,
		PartitionSeed: partitionSeed,
		MaxBlocks:     s.MaxBlocksPerApp,
		Shape:         s.Grid.Shape,
	}
}

// DesignKey hashes a Programming Layer design plus compile parameters into
// a cache key usable *before* synthesis. Synthesis is deterministic in the
// design's structure, so two designs with the same design key synthesize
// to structurally identical netlists and therefore share a compile key
// (bitstream.CompileKey) — the design key is registered as an alias for
// it, letting a repeat compile skip synthesis entirely. Like the compile
// key, every name is excluded: the design name and operator names only
// decorate net names, and loop-nest labels are canonicalized to
// first-occurrence indices so only the *grouping* of operators into CDFG
// blocks is hashed, not the label text.
//
// The same property is what makes the key the admission gateway's
// coalescing handle: N tenants submitting the same accelerator under N
// different names map onto one key, one in-flight compile, one cache
// entry.
func DesignKey(d *hls.Design, p CompileParams) bitstream.CacheKey {
	h := sha256.New()
	loopIdx := make(map[string]int)
	fmt.Fprintf(h, "ops %d\n", len(d.Ops))
	for i := range d.Ops {
		op := &d.Ops[i]
		li, ok := loopIdx[op.Loop]
		if !ok {
			li = len(loopIdx)
			loopIdx[op.Loop] = li
		}
		fmt.Fprintf(h, "o %d %d %d %d %d %d\n",
			op.Kind, li, op.Budget.LUTs, op.Budget.DFFs, op.Budget.DSPs, op.Budget.BRAMs)
	}
	fmt.Fprintf(h, "conns %d\n", len(d.Conns))
	for _, c := range d.Conns {
		fmt.Fprintf(h, "c %d %d %d\n", c.From, c.To, c.Width)
	}
	fmt.Fprintf(h, "capacity %d %d %d %d\n",
		p.BlockCapacity.LUTs, p.BlockCapacity.DFFs, p.BlockCapacity.DSPs, p.BlockCapacity.BRAMKb)
	fmt.Fprintf(h, "seed %d maxblocks %d\n", p.PartitionSeed, p.MaxBlocks)
	fmt.Fprintf(h, "shape rows %d\n", p.Shape.Rows)
	for _, c := range p.Shape.Columns {
		fmt.Fprintf(h, "col %d %d\n", c.Kind, c.SitesPerDie)
	}
	var k bitstream.CacheKey
	h.Sum(k[:0])
	return k
}

// designKey is DesignKey under this stack's own parameters.
func (s *Stack) designKey(d *hls.Design) bitstream.CacheKey {
	return DesignKey(d, s.CompileParams())
}
