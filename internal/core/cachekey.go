package core

import (
	"crypto/sha256"
	"fmt"

	"vital/internal/bitstream"
	"vital/internal/hls"
)

// designKey hashes a Programming Layer design plus the stack's compile
// parameters into a cache key usable *before* synthesis. Synthesis is
// deterministic in the design's structure, so two designs with the same
// design key synthesize to structurally identical netlists and therefore
// share a compile key (bitstream.CompileKey) — the design key is
// registered as an alias for it, letting a repeat compile skip synthesis
// entirely. Like the compile key, every name is excluded: the design
// name and operator names only decorate net names, and loop-nest labels
// are canonicalized to first-occurrence indices so only the *grouping*
// of operators into CDFG blocks is hashed, not the label text.
func (s *Stack) designKey(d *hls.Design) bitstream.CacheKey {
	h := sha256.New()
	loopIdx := make(map[string]int)
	fmt.Fprintf(h, "ops %d\n", len(d.Ops))
	for i := range d.Ops {
		op := &d.Ops[i]
		li, ok := loopIdx[op.Loop]
		if !ok {
			li = len(loopIdx)
			loopIdx[op.Loop] = li
		}
		fmt.Fprintf(h, "o %d %d %d %d %d %d\n",
			op.Kind, li, op.Budget.LUTs, op.Budget.DFFs, op.Budget.DSPs, op.Budget.BRAMs)
	}
	fmt.Fprintf(h, "conns %d\n", len(d.Conns))
	for _, c := range d.Conns {
		fmt.Fprintf(h, "c %d %d %d\n", c.From, c.To, c.Width)
	}
	fmt.Fprintf(h, "capacity %d %d %d %d\n",
		s.BlockCapacity.LUTs, s.BlockCapacity.DFFs, s.BlockCapacity.DSPs, s.BlockCapacity.BRAMKb)
	fmt.Fprintf(h, "seed %d maxblocks %d\n", partitionSeed, s.MaxBlocksPerApp)
	fmt.Fprintf(h, "shape rows %d\n", s.Grid.Shape.Rows)
	for _, c := range s.Grid.Shape.Columns {
		fmt.Fprintf(h, "col %d %d\n", c.Kind, c.SitesPerDie)
	}
	var k bitstream.CacheKey
	h.Sum(k[:0])
	return k
}
