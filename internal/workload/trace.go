package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Composition is one Table 3 workload-set composition: the percentage of
// small, medium and large accelerator designs in the request mix.
type Composition struct {
	Index   int
	PctS    int
	PctM    int
	PctL    int
	Caption string
}

// Table3 lists the ten compositions evaluated in the paper. Set 7 is
// printed in the paper as "33% S + 33% L + 34% L"; the obvious intent
// (matching the caption pattern) is 33/33/34 across S/M/L.
var Table3 = []Composition{
	{1, 100, 0, 0, "100% S"},
	{2, 0, 100, 0, "100% M"},
	{3, 0, 0, 100, "100% L"},
	{4, 50, 50, 0, "50% S + 50% M"},
	{5, 50, 0, 50, "50% S + 50% L"},
	{6, 0, 50, 50, "50% M + 50% L"},
	{7, 33, 33, 34, "33% S + 33% M + 34% L"},
	{8, 20, 20, 60, "20% S + 20% M + 60% L"},
	{9, 20, 60, 20, "20% S + 60% M + 20% L"},
	{10, 60, 20, 20, "60% S + 20% M + 20% L"},
}

// Request is one application-deployment request in a workload set.
type Request struct {
	ID   int
	Spec Spec
	// ArriveSec is the arrival time in seconds from the start of the run.
	ArriveSec float64
}

// TraceConfig controls synthetic workload-set generation (Section 5.1:
// "requests ... issued with a random time interval to emulate the dynamic
// cloud environment").
type TraceConfig struct {
	// NumRequests is the length of the request sequence.
	NumRequests int
	// MeanInterarrivalSec is the mean of the exponential inter-arrival
	// distribution.
	MeanInterarrivalSec float64
	// Seed makes the trace reproducible.
	Seed int64
}

// GenerateTrace synthesizes one workload set for the given composition.
// Variants are drawn according to the composition percentages and the
// benchmark family uniformly from the suite.
func GenerateTrace(c Composition, cfg TraceConfig) ([]Request, error) {
	if c.PctS+c.PctM+c.PctL != 100 {
		return nil, fmt.Errorf("workload: composition %d percentages sum to %d", c.Index, c.PctS+c.PctM+c.PctL)
	}
	if cfg.NumRequests <= 0 {
		return nil, fmt.Errorf("workload: NumRequests must be positive")
	}
	if cfg.MeanInterarrivalSec <= 0 {
		return nil, fmt.Errorf("workload: MeanInterarrivalSec must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	reqs := make([]Request, 0, cfg.NumRequests)
	now := 0.0
	for i := 0; i < cfg.NumRequests; i++ {
		v := drawVariant(rng, c)
		b := &Suite[rng.Intn(len(Suite))]
		now += expDraw(rng, cfg.MeanInterarrivalSec)
		reqs = append(reqs, Request{
			ID:        i,
			Spec:      Spec{Benchmark: b, Variant: v},
			ArriveSec: now,
		})
	}
	return reqs, nil
}

func drawVariant(rng *rand.Rand, c Composition) Variant {
	p := rng.Intn(100)
	switch {
	case p < c.PctS:
		return Small
	case p < c.PctS+c.PctM:
		return Medium
	default:
		return Large
	}
}

// expDraw samples an exponential inter-arrival time with the given mean.
func expDraw(rng *rand.Rand, mean float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return -mean * math.Log(u)
}
