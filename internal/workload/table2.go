// Package workload reproduces the paper's benchmark inputs: the Table 2
// suite of DNN accelerators (DNNWeaver-generated in the paper; rebuilt here
// as parameterized operator-graph designs), the Table 3 workload-set
// compositions, the synthetic request traces of Section 5.1, and the
// representative applications of Fig. 1a.
package workload

import (
	"fmt"
	"strings"

	"vital/internal/hls"
	"vital/internal/netlist"
)

// Variant is the accelerator design size of Table 2.
type Variant uint8

// Accelerator variants: the paper provides three designs per benchmark by
// adjusting DNNWeaver input parameters (number of processing units).
const (
	Small Variant = iota
	Medium
	Large
)

// String returns the Table 2/3 shorthand (S/M/L).
func (v Variant) String() string {
	switch v {
	case Small:
		return "S"
	case Medium:
		return "M"
	case Large:
		return "L"
	}
	return fmt.Sprintf("Variant(%d)", uint8(v))
}

// Benchmark describes one DNN benchmark family. DNNWeaver-style
// accelerators are arrays of identical processing units (PUs); the S/M/L
// variants instantiate different PU counts, so per-PU resources are
// constant within a family — visible in Table 2, where DSP count divided by
// block count is constant per benchmark.
type Benchmark struct {
	Name string
	// PerPU is the resource budget of one processing unit.
	PerPU hls.Budget
	// PUs gives the processing-unit count for [Small, Medium, Large].
	PUs [3]int
	// Layers is the number of pipeline stages each PU is built from.
	Layers int
	// ServiceSec is the nominal execution time in seconds of one request
	// for [Small, Medium, Large] (model time; larger variants process
	// larger models but also have more PUs — the paper does not publish
	// durations, so these are representative cloud job lengths).
	ServiceSec [3]float64
}

// Suite is the Table 2 benchmark suite. Per-PU budgets are calibrated so
// that PU-count × per-PU reproduces every Table 2 row; BRAM is materialized
// in whole BRAM36 primitives, so a few Mb values differ from the paper in
// the last printed decimal (e.g. cifar10/M: 13.4 vs 13.3 Mb).
//
// Note: the paper's Table 2 lists 233.2k DFFs for the large svhn design;
// every other row in the family has exactly PUs × per-PU resources, and
// 9 × 23.7k = 213.3k — we take 233.2 to be a digit transposition of 213.3
// and reproduce the consistent value.
var Suite = []Benchmark{
	{Name: "lenet", PerPU: hls.Budget{LUTs: 23500, DFFs: 23300, DSPs: 42, BRAMs: 74}, PUs: [3]int{1, 4, 7}, Layers: 4, ServiceSec: [3]float64{45, 110, 200}},
	{Name: "alexnet", PerPU: hls.Budget{LUTs: 27600, DFFs: 26455, DSPs: 52, BRAMs: 87}, PUs: [3]int{2, 5, 8}, Layers: 8, ServiceSec: [3]float64{60, 140, 260}},
	{Name: "svhn", PerPU: hls.Budget{LUTs: 23333, DFFs: 23700, DSPs: 48, BRAMs: 85}, PUs: [3]int{1, 3, 9}, Layers: 5, ServiceSec: [3]float64{50, 120, 280}},
	{Name: "vgg16", PerPU: hls.Budget{LUTs: 26900, DFFs: 26870, DSPs: 52, BRAMs: 89}, PUs: [3]int{3, 7, 10}, Layers: 16, ServiceSec: [3]float64{90, 200, 320}},
	{Name: "cifar10", PerPU: hls.Budget{LUTs: 23000, DFFs: 22660, DSPs: 42, BRAMs: 76}, PUs: [3]int{2, 5, 8}, Layers: 6, ServiceSec: [3]float64{55, 130, 240}},
	{Name: "nin", PerPU: hls.Budget{LUTs: 24900, DFFs: 24900, DSPs: 50, BRAMs: 89}, PUs: [3]int{1, 3, 6}, Layers: 9, ServiceSec: [3]float64{50, 115, 210}},
	{Name: "resnet18", PerPU: hls.Budget{LUTs: 25733, DFFs: 25000, DSPs: 48, BRAMs: 85}, PUs: [3]int{3, 5, 10}, Layers: 18, ServiceSec: [3]float64{85, 170, 330}},
}

// Spec identifies one accelerator design (a benchmark at a variant).
type Spec struct {
	Benchmark *Benchmark
	Variant   Variant
}

// Find returns the benchmark with the given name.
func Find(name string) (*Benchmark, error) {
	for i := range Suite {
		if Suite[i].Name == name {
			return &Suite[i], nil
		}
	}
	return nil, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Name returns e.g. "alexnet-M".
func (s Spec) Name() string { return fmt.Sprintf("%s-%s", s.Benchmark.Name, s.Variant) }

// PUs returns the processing-unit count of this design.
func (s Spec) PUs() int { return s.Benchmark.PUs[s.Variant] }

// Resources returns the total resource demand (the Table 2 row).
func (s Spec) Resources() netlist.Resources {
	return s.Benchmark.PerPU.Resources().Scale(s.PUs())
}

// PaperBlocks returns the virtual-block count Table 2 reports for this
// design. In the paper's compilation each PU maps onto one virtual block.
func (s Spec) PaperBlocks() int { return s.PUs() }

// ServiceSec returns the nominal execution duration of one request.
func (s Spec) ServiceSec() float64 { return s.Benchmark.ServiceSec[s.Variant] }

// AllSpecs enumerates all 21 Table 2 designs in table order.
func AllSpecs() []Spec {
	specs := make([]Spec, 0, len(Suite)*3)
	for i := range Suite {
		for _, v := range []Variant{Small, Medium, Large} {
			specs = append(specs, Spec{Benchmark: &Suite[i], Variant: v})
		}
	}
	return specs
}

// ParseSpec parses a "<benchmark>-<S|M|L>" design name, e.g. "alexnet-M".
func ParseSpec(name string) (Spec, error) {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return Spec{}, fmt.Errorf("workload: design %q must be <benchmark>-<S|M|L>", name)
	}
	b, err := Find(name[:i])
	if err != nil {
		return Spec{}, err
	}
	var v Variant
	switch name[i+1:] {
	case "S":
		v = Small
	case "M":
		v = Medium
	case "L":
		v = Large
	default:
		return Spec{}, fmt.Errorf("workload: unknown variant %q in %q", name[i+1:], name)
	}
	return Spec{Benchmark: b, Variant: v}, nil
}
