package workload

import (
	"fmt"
	"math"
	"testing"

	"vital/internal/hls"
	"vital/internal/netlist"
)

// table2Expected is the paper's Table 2, transcribed: LUT (k), DFF (k),
// DSP, BRAM (Mb), #blocks, per benchmark and variant. The svhn/L DFF value
// uses the transposition-corrected 213.3 (see Suite docs).
var table2Expected = map[string][3]struct {
	lutK, dffK float64
	dsp        int
	bramMb     float64
	blocks     int
}{
	"lenet":    {{23.5, 23.3, 42, 2.6, 1}, {94.0, 93.2, 168, 10.4, 4}, {164.5, 163.1, 294, 18.2, 7}},
	"alexnet":  {{55.2, 52.9, 104, 6.1, 2}, {138.0, 132.3, 260, 15.3, 5}, {220.8, 211.6, 416, 24.5, 8}},
	"svhn":     {{23.3, 23.7, 48, 3.0, 1}, {70.0, 71.1, 144, 9.0, 3}, {210.0, 213.3, 432, 26.9, 9}},
	"vgg16":    {{80.7, 80.6, 156, 9.4, 3}, {188.3, 188.1, 364, 21.9, 7}, {269.0, 268.7, 520, 31.3, 10}},
	"cifar10":  {{46.0, 45.3, 84, 5.3, 2}, {115.0, 113.3, 210, 13.3, 5}, {184.0, 181.3, 336, 21.3, 8}},
	"nin":      {{24.9, 24.9, 50, 3.1, 1}, {74.7, 74.7, 150, 9.4, 3}, {149.4, 149.4, 300, 18.8, 6}},
	"resnet18": {{77.2, 75.0, 144, 9.0, 3}, {128.7, 125.0, 240, 14.9, 5}, {257.3, 250.0, 480, 29.9, 10}},
}

func TestSuiteMatchesTable2(t *testing.T) {
	for _, b := range Suite {
		want, ok := table2Expected[b.Name]
		if !ok {
			t.Fatalf("no expectation for %s", b.Name)
		}
		for v := Small; v <= Large; v++ {
			s := Spec{Benchmark: findT(t, b.Name), Variant: v}
			r := s.Resources()
			e := want[v]
			if got := math.Round(float64(r.LUTs)/100) / 10; got != e.lutK {
				t.Errorf("%s: LUT = %.1fk, want %.1fk", s.Name(), got, e.lutK)
			}
			if got := math.Round(float64(r.DFFs)/100) / 10; got != e.dffK {
				t.Errorf("%s: DFF = %.1fk, want %.1fk", s.Name(), got, e.dffK)
			}
			if r.DSPs != e.dsp {
				t.Errorf("%s: DSP = %d, want %d", s.Name(), r.DSPs, e.dsp)
			}
			// BRAM is materialized in whole BRAM36s; allow the last printed
			// decimal to differ by at most 0.1 Mb.
			if got := r.BRAMMb(); math.Abs(math.Round(got*10)/10-e.bramMb) > 0.101 {
				t.Errorf("%s: BRAM = %.2f Mb, want ≈%.1f", s.Name(), got, e.bramMb)
			}
			if s.PaperBlocks() != e.blocks {
				t.Errorf("%s: blocks = %d, want %d", s.Name(), s.PaperBlocks(), e.blocks)
			}
		}
	}
}

func findT(t *testing.T, name string) *Benchmark {
	t.Helper()
	b, err := Find(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFindUnknown(t *testing.T) {
	if _, err := Find("nosuch"); err == nil {
		t.Fatal("Find accepted unknown benchmark")
	}
}

func TestAllSpecsCount(t *testing.T) {
	specs := AllSpecs()
	if len(specs) != 21 {
		t.Fatalf("AllSpecs = %d, want 21", len(specs))
	}
}

func TestDSPPerBlockConstantWithinFamily(t *testing.T) {
	// The Table 2 signature: DSP ÷ blocks is constant per benchmark.
	for _, b := range Suite {
		per := -1
		for v := Small; v <= Large; v++ {
			s := Spec{Benchmark: findT(t, b.Name), Variant: v}
			q := s.Resources().DSPs / s.PaperBlocks()
			if per == -1 {
				per = q
			} else if per != q {
				t.Fatalf("%s: DSP per block varies (%d vs %d)", b.Name, per, q)
			}
		}
	}
}

func TestBuildDesignBudgetMatchesSpec(t *testing.T) {
	for _, s := range AllSpecs() {
		d := BuildDesign(s)
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if got := d.TotalBudget().Resources(); got != s.Resources() {
			t.Fatalf("%s: design budget %+v != spec %+v", s.Name(), got, s.Resources())
		}
	}
}

func TestBuildDesignSynthesizes(t *testing.T) {
	s := Spec{Benchmark: findT(t, "lenet"), Variant: Small}
	res, err := hls.Synthesize(BuildDesign(s))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Netlist.Resources(); got != s.Resources() {
		t.Fatalf("netlist %+v != spec %+v", got, s.Resources())
	}
	if _, count := res.Netlist.ConnectedComponents(); count != 1 {
		t.Fatalf("accelerator netlist has %d components", count)
	}
}

func TestDesignFitsOnCluster(t *testing.T) {
	// Every Table 2 design must fit within the 4-FPGA cluster's user
	// resources (the paper deploys all of them).
	perBlock := netlist.Resources{LUTs: 79200, DFFs: 158400, DSPs: 580, BRAMKb: 4320}
	for _, s := range AllSpecs() {
		if need := s.Resources().BlocksNeeded(perBlock); need > 15 {
			t.Fatalf("%s needs %d blocks, exceeding one device", s.Name(), need)
		}
	}
}

func TestTable3CompositionsSumTo100(t *testing.T) {
	if len(Table3) != 10 {
		t.Fatalf("Table3 has %d sets, want 10", len(Table3))
	}
	for _, c := range Table3 {
		if c.PctS+c.PctM+c.PctL != 100 {
			t.Fatalf("set %d sums to %d", c.Index, c.PctS+c.PctM+c.PctL)
		}
	}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	cfg := TraceConfig{NumRequests: 50, MeanInterarrivalSec: 30, Seed: 42}
	a, err := GenerateTrace(Table3[6], cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTrace(Table3[6], cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Spec.Name() != b[i].Spec.Name() || a[i].ArriveSec != b[i].ArriveSec {
			t.Fatalf("trace not deterministic at %d", i)
		}
	}
}

func TestGenerateTraceRespectsComposition(t *testing.T) {
	cfg := TraceConfig{NumRequests: 4000, MeanInterarrivalSec: 10, Seed: 7}
	for _, c := range []Composition{Table3[0], Table3[2], Table3[7]} {
		reqs, err := GenerateTrace(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var counts [3]int
		for _, r := range reqs {
			counts[r.Spec.Variant]++
		}
		for v, pct := range []int{c.PctS, c.PctM, c.PctL} {
			got := float64(counts[v]) / float64(len(reqs)) * 100
			if math.Abs(got-float64(pct)) > 4 {
				t.Fatalf("set %d: variant %d share %.1f%%, want ≈%d%%", c.Index, v, got, pct)
			}
		}
	}
}

func TestGenerateTraceArrivalsMonotone(t *testing.T) {
	reqs, err := GenerateTrace(Table3[0], TraceConfig{NumRequests: 100, MeanInterarrivalSec: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].ArriveSec <= reqs[i-1].ArriveSec {
			t.Fatalf("arrivals not strictly increasing at %d", i)
		}
	}
}

func TestGenerateTraceValidation(t *testing.T) {
	bad := Composition{Index: 99, PctS: 50, PctM: 50, PctL: 50}
	if _, err := GenerateTrace(bad, TraceConfig{NumRequests: 1, MeanInterarrivalSec: 1}); err == nil {
		t.Fatal("accepted composition summing to 150")
	}
	if _, err := GenerateTrace(Table3[0], TraceConfig{NumRequests: 0, MeanInterarrivalSec: 1}); err == nil {
		t.Fatal("accepted zero requests")
	}
	if _, err := GenerateTrace(Table3[0], TraceConfig{NumRequests: 1, MeanInterarrivalSec: 0}); err == nil {
		t.Fatal("accepted zero interarrival")
	}
}

func TestFig1aAllAppsFitUnderHalfDevice(t *testing.T) {
	rows := Fig1a()
	if len(rows) != len(Fig1aApps) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Max <= 0 || r.Max >= 0.5 {
			t.Fatalf("%s: binding fraction %.2f outside (0, 0.5) — Fig. 1a shows all apps well under half a VU13P", r.App.Name, r.Max)
		}
		for _, v := range []float64{r.LUT, r.DFF, r.DSP, r.BRAM} {
			if v > r.Max+1e-12 {
				t.Fatalf("%s: Max %.3f below component %.3f", r.App.Name, r.Max, v)
			}
		}
	}
}

func ExampleSpec_Name() {
	b, _ := Find("alexnet")
	fmt.Println(Spec{Benchmark: b, Variant: Medium}.Name())
	// Output: alexnet-M
}
