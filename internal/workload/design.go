package workload

import (
	"fmt"

	"vital/internal/hls"
)

// Connection widths of generated accelerators. Intra-PU connections are
// wide (full activation buses plus control); inter-PU streams are narrower,
// so a min-cut partition naturally falls on PU boundaries — which is how
// the paper's designs end up with one PU per virtual block (Table 2).
const (
	intraPUDataWidth   = 512
	intraPUCtrlWidth   = 32
	intraPUStatusWidth = 16
	interPUWidth       = 256
	ioWidth            = 128
)

// BuildDesign expands a Table 2 spec into an operator-graph design: an
// array of identical processing units, each a pipeline of layer operators,
// chained by inter-PU streams. The design's total budget equals the spec's
// Table 2 resources exactly.
func BuildDesign(s Spec) *hls.Design {
	d := hls.NewDesign(s.Name())
	in := d.AddOp(hls.OpInput, "in", "io", hls.Budget{})
	out := d.AddOp(hls.OpOutput, "out", "io", hls.Budget{})

	var prevPUExit hls.OpID = in
	for pu := 0; pu < s.PUs(); pu++ {
		entry, exit := buildPU(d, s, pu)
		width := interPUWidth
		if prevPUExit == in {
			width = ioWidth
		}
		d.Connect(prevPUExit, entry, width)
		prevPUExit = exit
	}
	d.Connect(prevPUExit, out, ioWidth)
	return d
}

// buildPU emits one processing unit as a chain of layer operators and
// returns its entry and exit ops.
func buildPU(d *hls.Design, s Spec, pu int) (entry, exit hls.OpID) {
	b := s.Benchmark
	layers := b.Layers
	luts := distribute(b.PerPU.LUTs, layers)
	dffs := distribute(b.PerPU.DFFs, layers)
	dsps := distribute(b.PerPU.DSPs, layers)
	brams := distribute(b.PerPU.BRAMs, layers)

	var prev hls.OpID = -1
	for l := 0; l < layers; l++ {
		kind := hls.OpConv
		switch {
		case l == layers-1:
			kind = hls.OpFC
		case l%3 == 2:
			kind = hls.OpPool
		}
		loop := fmt.Sprintf("pu%d/layer%d", pu, l)
		op := d.AddOp(kind, fmt.Sprintf("pu%d/l%d", pu, l), loop, hls.Budget{
			LUTs: luts[l], DFFs: dffs[l], DSPs: dsps[l], BRAMs: brams[l],
		})
		if prev >= 0 {
			// Three parallel nets per stage boundary (activations, control,
			// status): cutting inside a PU consumes several channels, so
			// the partitioner prefers PU boundaries.
			d.Connect(prev, op, intraPUDataWidth)
			d.Connect(prev, op, intraPUCtrlWidth)
			d.Connect(prev, op, intraPUStatusWidth)
		} else {
			entry = op
		}
		prev = op
	}
	return entry, prev
}

// distribute splits total into n near-equal non-negative integers summing
// exactly to total.
func distribute(total, n int) []int {
	out := make([]int, n)
	if n == 0 {
		return out
	}
	base := total / n
	rem := total - base*n
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}
