package workload

import (
	"vital/internal/fpga"
	"vital/internal/netlist"
)

// RepresentativeApp is one entry of Fig. 1a: a published FPGA accelerator
// whose resource usage, normalized to the VU13P capacity, motivates
// fine-grained sharing (no single application fills a modern device).
//
// The paper plots these without a numeric table; the entries below use the
// resource footprints reported in the cited accelerator papers (references
// [18][28][43][57][62][70][72] of the paper), which is the same population
// the figure draws from. What the experiment must reproduce is the *shape*:
// every application uses well under half of a VU13P.
type RepresentativeApp struct {
	Name   string
	Source string // citation in the paper's reference list
	Usage  netlist.Resources
}

// Fig1aApps lists the representative applications.
var Fig1aApps = []RepresentativeApp{
	{Name: "FPGP (graph/BFS)", Source: "[18]", Usage: netlist.Resources{LUTs: 120000, DFFs: 150000, DSPs: 0, BRAMKb: 18432}},
	{Name: "DeltaRNN", Source: "[28]", Usage: netlist.Resources{LUTs: 261000, DFFs: 226000, DSPs: 768, BRAMKb: 29081}},
	{Name: "BinaryCNN", Source: "[43]", Usage: netlist.Resources{LUTs: 219000, DFFs: 261000, DSPs: 384, BRAMKb: 24192}},
	{Name: "OpenCL-CNN", Source: "[57]", Usage: netlist.Resources{LUTs: 161000, DFFs: 210000, DSPs: 1518, BRAMKb: 21600}},
	{Name: "C-LSTM", Source: "[62]", Usage: netlist.Resources{LUTs: 236000, DFFs: 265000, DSPs: 1792, BRAMKb: 16992}},
	{Name: "CNN-Winograd", Source: "[70]", Usage: netlist.Resources{LUTs: 268000, DFFs: 302000, DSPs: 2520, BRAMKb: 33120}},
	{Name: "BNN-SW", Source: "[72]", Usage: netlist.Resources{LUTs: 47000, DFFs: 52000, DSPs: 132, BRAMKb: 10080}},
	{Name: "KVS (memcached)", Source: "[42]", Usage: netlist.Resources{LUTs: 95000, DFFs: 124000, DSPs: 0, BRAMKb: 14400}},
}

// Fig1aRow is one normalized bar of the figure.
type Fig1aRow struct {
	App RepresentativeApp
	// Fractions of VU13P capacity per resource class.
	LUT, DFF, DSP, BRAM float64
	// Max is the binding fraction — the share of the device the app would
	// monopolize under per-device allocation.
	Max float64
}

// Fig1a normalizes each representative application to the VU13P capacity.
func Fig1a() []Fig1aRow {
	capTotal := fpga.VU13P().TotalResources()
	rows := make([]Fig1aRow, 0, len(Fig1aApps))
	frac := func(d, c int) float64 {
		if c == 0 {
			return 0
		}
		return float64(d) / float64(c)
	}
	for _, app := range Fig1aApps {
		r := Fig1aRow{
			App:  app,
			LUT:  frac(app.Usage.LUTs, capTotal.LUTs),
			DFF:  frac(app.Usage.DFFs, capTotal.DFFs),
			DSP:  frac(app.Usage.DSPs, capTotal.DSPs),
			BRAM: frac(app.Usage.BRAMKb, capTotal.BRAMKb),
		}
		r.Max = r.LUT
		for _, v := range []float64{r.DFF, r.DSP, r.BRAM} {
			if v > r.Max {
				r.Max = v
			}
		}
		rows = append(rows, r)
	}
	return rows
}
