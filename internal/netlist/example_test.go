package netlist_test

import (
	"fmt"

	"vital/internal/netlist"
)

// Build a two-cell design and inspect its resources — the IR every stage of
// the stack exchanges.
func Example() {
	n := netlist.New("blinky")
	lut := n.AddCell(netlist.KindLUT, "inv")
	ff := n.AddCell(netlist.KindDFF, "state")
	d := n.AddNet("d", 1)
	q := n.AddNet("q", 1)
	n.SetDriver(d, lut)
	n.AddSink(d, ff)
	n.SetDriver(q, ff)
	n.AddSink(q, lut)
	if err := n.Check(); err != nil {
		panic(err)
	}
	fmt.Println(n.Stats())
	// Output: blinky: 2 cells, 2 nets (0.0k LUT, 0.0k DFF, 0 DSP, 0.00 Mb BRAM)
}

func ExampleResources_BlocksNeeded() {
	block := netlist.Resources{LUTs: 79200, DFFs: 158400, DSPs: 580, BRAMKb: 4320}
	demand := netlist.Resources{LUTs: 94000, DFFs: 93200, DSPs: 168, BRAMKb: 10656}
	fmt.Println(demand.BlocksNeeded(block))
	// Output: 3
}
