package netlist

// A line-oriented text interchange format for netlists, in the spirit of
// structural Verilog / EDIF: enough to dump a technology-mapped design from
// one tool and read it into another (the netlist is the stack's
// language-independent IR, Section 3.3). The format is deliberately plain:
//
//	netlist <name>
//	cell <id> <kind> <name>
//	net <id> <width> <name>
//	drive <net> <cell>
//	sink <net> <cell>
//	port <name> <net> <in|out> <width>
//
// IDs must be dense and ascending; Parse validates with Check.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteTo serializes the netlist. It implements io.WriterTo.
func (n *Netlist) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	emit := func(format string, args ...interface{}) error {
		k, err := fmt.Fprintf(bw, format, args...)
		total += int64(k)
		return err
	}
	if err := emit("netlist %s\n", escapeToken(n.Name)); err != nil {
		return total, err
	}
	for i := range n.Cells {
		c := &n.Cells[i]
		if err := emit("cell %d %s %s\n", c.ID, c.Kind, escapeToken(c.Name)); err != nil {
			return total, err
		}
	}
	for i := range n.Nets {
		t := &n.Nets[i]
		if err := emit("net %d %d %s\n", t.ID, t.Width, escapeToken(t.Name)); err != nil {
			return total, err
		}
		if t.Driver != NoCell {
			if err := emit("drive %d %d\n", t.ID, t.Driver); err != nil {
				return total, err
			}
		}
		for _, s := range t.Sinks {
			if err := emit("sink %d %d\n", t.ID, s); err != nil {
				return total, err
			}
		}
	}
	for _, p := range n.Ports {
		dir := "in"
		if p.Dir == DirOut {
			dir = "out"
		}
		if err := emit("port %s %d %s %d\n", escapeToken(p.Name), p.Net, dir, p.Width); err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}

// escapeToken keeps names single-token (spaces become U+00A0-free escapes).
func escapeToken(s string) string {
	if s == "" {
		return "_"
	}
	return strings.ReplaceAll(s, " ", "\\s")
}

func unescapeToken(s string) string {
	if s == "_" {
		return ""
	}
	return strings.ReplaceAll(s, "\\s", " ")
}

// kindFromString inverts Kind.String.
func kindFromString(s string) (Kind, error) {
	switch s {
	case "LUT":
		return KindLUT, nil
	case "DFF":
		return KindDFF, nil
	case "DSP":
		return KindDSP, nil
	case "BRAM":
		return KindBRAM, nil
	case "IO":
		return KindIO, nil
	}
	return 0, fmt.Errorf("netlist: unknown cell kind %q", s)
}

// Parse reads the text format back into a validated netlist.
func Parse(r io.Reader) (*Netlist, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var n *Netlist
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		bad := func(why string) error {
			return fmt.Errorf("netlist: line %d: %s: %q", lineNo, why, line)
		}
		switch fields[0] {
		case "netlist":
			if len(fields) != 2 {
				return nil, bad("want: netlist <name>")
			}
			if n != nil {
				return nil, bad("duplicate netlist header")
			}
			n = New(unescapeToken(fields[1]))
		case "cell":
			if n == nil {
				return nil, bad("cell before netlist header")
			}
			if len(fields) != 4 {
				return nil, bad("want: cell <id> <kind> <name>")
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id != n.NumCells() {
				return nil, bad("cell IDs must be dense and ascending")
			}
			kind, err := kindFromString(fields[2])
			if err != nil {
				return nil, bad(err.Error())
			}
			n.AddCell(kind, unescapeToken(fields[3]))
		case "net":
			if n == nil {
				return nil, bad("net before netlist header")
			}
			if len(fields) != 4 {
				return nil, bad("want: net <id> <width> <name>")
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id != n.NumNets() {
				return nil, bad("net IDs must be dense and ascending")
			}
			width, err := strconv.Atoi(fields[2])
			if err != nil || width < 1 {
				return nil, bad("bad width")
			}
			n.AddNet(unescapeToken(fields[3]), width)
		case "drive", "sink":
			if n == nil {
				return nil, bad("connection before netlist header")
			}
			if len(fields) != 3 {
				return nil, bad("want: " + fields[0] + " <net> <cell>")
			}
			tid, err1 := strconv.Atoi(fields[1])
			cid, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || tid < 0 || tid >= n.NumNets() || cid < 0 || cid >= n.NumCells() {
				return nil, bad("net/cell out of range")
			}
			if fields[0] == "drive" {
				if n.Nets[tid].Driver != NoCell {
					return nil, bad("net already driven")
				}
				n.SetDriver(NetID(tid), CellID(cid))
			} else {
				n.AddSink(NetID(tid), CellID(cid))
			}
		case "port":
			if n == nil {
				return nil, bad("port before netlist header")
			}
			if len(fields) != 5 {
				return nil, bad("want: port <name> <net> <in|out> <width>")
			}
			tid, err := strconv.Atoi(fields[2])
			if err != nil || tid < 0 || tid >= n.NumNets() {
				return nil, bad("port net out of range")
			}
			var dir Dir
			switch fields[3] {
			case "in":
				dir = DirIn
			case "out":
				dir = DirOut
			default:
				return nil, bad("port direction must be in or out")
			}
			width, err := strconv.Atoi(fields[4])
			if err != nil || width < 1 {
				return nil, bad("bad port width")
			}
			n.AddPort(unescapeToken(fields[1]), NetID(tid), dir, width)
		default:
			return nil, bad("unknown directive")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n == nil {
		return nil, fmt.Errorf("netlist: empty input")
	}
	if err := n.Check(); err != nil {
		return nil, err
	}
	return n, nil
}
