package netlist

import "fmt"

// Resources is a vector of FPGA resource quantities. It is used both for
// demand (how much a netlist or virtual block needs) and for supply (how
// much a physical block or device provides). BRAM is tracked in kilobits so
// that the paper's Mb figures can be represented exactly.
type Resources struct {
	LUTs   int
	DFFs   int
	DSPs   int
	BRAMKb int
}

// AddCell accumulates the resource cost of a single primitive of kind k.
func (r *Resources) AddCell(k Kind) {
	switch k {
	case KindLUT:
		r.LUTs++
	case KindDFF:
		r.DFFs++
	case KindDSP:
		r.DSPs++
	case KindBRAM:
		r.BRAMKb += BRAMKb
	default:
		// KindIO pads bind to the interface rows, not the fabric: they
		// consume no countable resources.
	}
}

// Add returns the element-wise sum r + o.
func (r Resources) Add(o Resources) Resources {
	return Resources{
		LUTs:   r.LUTs + o.LUTs,
		DFFs:   r.DFFs + o.DFFs,
		DSPs:   r.DSPs + o.DSPs,
		BRAMKb: r.BRAMKb + o.BRAMKb,
	}
}

// Sub returns the element-wise difference r - o.
func (r Resources) Sub(o Resources) Resources {
	return Resources{
		LUTs:   r.LUTs - o.LUTs,
		DFFs:   r.DFFs - o.DFFs,
		DSPs:   r.DSPs - o.DSPs,
		BRAMKb: r.BRAMKb - o.BRAMKb,
	}
}

// Scale returns r multiplied element-wise by the integer factor k.
func (r Resources) Scale(k int) Resources {
	return Resources{
		LUTs:   r.LUTs * k,
		DFFs:   r.DFFs * k,
		DSPs:   r.DSPs * k,
		BRAMKb: r.BRAMKb * k,
	}
}

// FitsIn reports whether every component of r is at most the corresponding
// component of capacity.
func (r Resources) FitsIn(capacity Resources) bool {
	return r.LUTs <= capacity.LUTs &&
		r.DFFs <= capacity.DFFs &&
		r.DSPs <= capacity.DSPs &&
		r.BRAMKb <= capacity.BRAMKb
}

// IsZero reports whether all components are zero.
func (r Resources) IsZero() bool {
	return r == Resources{}
}

// NonNegative reports whether all components are >= 0.
func (r Resources) NonNegative() bool {
	return r.LUTs >= 0 && r.DFFs >= 0 && r.DSPs >= 0 && r.BRAMKb >= 0
}

// MaxRatio returns the largest ratio r[i]/cap[i] over all components, i.e.
// the utilization of the binding resource. Components with zero capacity and
// zero demand are ignored; zero capacity with non-zero demand yields +Inf
// semantics via a very large value.
func (r Resources) MaxRatio(capacity Resources) float64 {
	ratio := func(d, c int) float64 {
		if c == 0 {
			if d == 0 {
				return 0
			}
			return 1e18
		}
		return float64(d) / float64(c)
	}
	m := ratio(r.LUTs, capacity.LUTs)
	if v := ratio(r.DFFs, capacity.DFFs); v > m {
		m = v
	}
	if v := ratio(r.DSPs, capacity.DSPs); v > m {
		m = v
	}
	if v := ratio(r.BRAMKb, capacity.BRAMKb); v > m {
		m = v
	}
	return m
}

// BlocksNeeded returns the minimum number of blocks of the given per-block
// capacity required to hold r, considering each resource class
// independently. This is the lower bound the compilation layer uses when
// choosing how many virtual blocks to allocate for an application (Section
// 3.3, step "allocating a certain number of virtual blocks").
func (r Resources) BlocksNeeded(perBlock Resources) int {
	need := 0
	ceilDiv := func(a, b int) int {
		if b <= 0 {
			if a > 0 {
				return 1 << 30
			}
			return 0
		}
		return (a + b - 1) / b
	}
	if v := ceilDiv(r.LUTs, perBlock.LUTs); v > need {
		need = v
	}
	if v := ceilDiv(r.DFFs, perBlock.DFFs); v > need {
		need = v
	}
	if v := ceilDiv(r.DSPs, perBlock.DSPs); v > need {
		need = v
	}
	if v := ceilDiv(r.BRAMKb, perBlock.BRAMKb); v > need {
		need = v
	}
	return need
}

// BRAMMb returns the BRAM capacity in megabits as a float (paper units).
func (r Resources) BRAMMb() float64 { return float64(r.BRAMKb) / 1024 }

// String renders the vector in the paper's units (BRAM in Mb).
func (r Resources) String() string {
	return fmt.Sprintf("%.1fk LUT, %.1fk DFF, %d DSP, %.2f Mb BRAM",
		float64(r.LUTs)/1000, float64(r.DFFs)/1000, r.DSPs, r.BRAMMb())
}
