// Package netlist defines the primitive-level intermediate representation
// shared by the whole ViTAL stack. A Netlist is a bipartite graph of cells
// (technology-mapped primitives such as LUTs, flip-flops, DSP slices and
// block RAMs) and nets (the wires connecting them). It is the output of the
// synthesis front end (internal/hls), the input of the partitioner
// (internal/partition) and of place-and-route (internal/pnr).
//
// The paper partitions applications at the netlist level (Section 3.3)
// because a netlist is language independent and gives accurate low-level
// resource estimates; this package is the concrete realization of that
// design decision.
package netlist

import (
	"fmt"
	"sort"
)

// Kind identifies the primitive type of a cell.
type Kind uint8

// Primitive kinds. The set mirrors the resource classes of a Xilinx
// UltraScale+ device as used in the paper's Table 2 and Table 4.
const (
	// KindLUT is a 6-input look-up table implementing arbitrary logic.
	KindLUT Kind = iota
	// KindDFF is a D flip-flop (register).
	KindDFF
	// KindDSP is a DSP48-style hard multiply-accumulate slice.
	KindDSP
	// KindBRAM is a 36 Kb block RAM.
	KindBRAM
	// KindIO is a top-level input/output pad of the design.
	KindIO
	numKinds
)

// BRAMKb is the capacity in kilobits of a single KindBRAM primitive.
const BRAMKb = 36

// String returns the conventional short name of the kind.
func (k Kind) String() string {
	switch k {
	case KindLUT:
		return "LUT"
	case KindDFF:
		return "DFF"
	case KindDSP:
		return "DSP"
	case KindBRAM:
		return "BRAM"
	case KindIO:
		return "IO"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// CellID indexes a cell within a Netlist. IDs are dense: the cell with
// CellID i is Netlist.Cells[i].
type CellID int32

// NetID indexes a net within a Netlist, dense like CellID.
type NetID int32

// NoCell marks the absence of a cell, e.g. the driver of a primary input.
const NoCell CellID = -1

// NoNet marks an unconnected pin.
const NoNet NetID = -1

// Cell is a single technology-mapped primitive.
type Cell struct {
	ID   CellID
	Kind Kind
	// Name is a hierarchical instance name, e.g. "conv1/pe3/mac".
	Name string
	// In lists the nets driving this cell's input pins.
	In []NetID
	// Out lists the nets this cell drives (usually exactly one).
	Out []NetID
}

// Net is a wire (or a bus, when Width > 1) connecting one driver to any
// number of sinks. Bus nets keep generated netlists compact: a 64-bit data
// path between two pipeline stages is one Net with Width 64 rather than 64
// parallel single-bit nets. All connectivity-sensitive algorithms weight a
// net by its Width.
type Net struct {
	ID     NetID
	Name   string
	Driver CellID // NoCell for primary inputs
	Sinks  []CellID
	Width  int // bits carried; >= 1
}

// Dir is the direction of a top-level port.
type Dir uint8

// Port directions.
const (
	DirIn Dir = iota
	DirOut
)

// Port is a top-level interface pin of the design.
type Port struct {
	Name  string
	Net   NetID
	Dir   Dir
	Width int
}

// Netlist is a complete technology-mapped design.
type Netlist struct {
	Name  string
	Cells []Cell
	Nets  []Net
	Ports []Port
}

// New returns an empty netlist with the given design name.
func New(name string) *Netlist {
	return &Netlist{Name: name}
}

// AddCell appends a cell of the given kind and returns its ID.
func (n *Netlist) AddCell(kind Kind, name string) CellID {
	id := CellID(len(n.Cells))
	n.Cells = append(n.Cells, Cell{ID: id, Kind: kind, Name: name})
	return id
}

// AddNet appends a net of the given width and returns its ID.
// Widths below 1 are clamped to 1.
func (n *Netlist) AddNet(name string, width int) NetID {
	if width < 1 {
		width = 1
	}
	id := NetID(len(n.Nets))
	n.Nets = append(n.Nets, Net{ID: id, Name: name, Driver: NoCell, Width: width})
	return id
}

// SetDriver records cell c as the driver of net t and adds t to the cell's
// output pin list. It panics if the net already has a driver, mirroring the
// single-driver rule of synthesized hardware.
func (n *Netlist) SetDriver(t NetID, c CellID) {
	net := &n.Nets[t]
	if net.Driver != NoCell {
		panic(fmt.Sprintf("netlist: net %q already driven by cell %d", net.Name, net.Driver))
	}
	net.Driver = c
	cell := &n.Cells[c]
	cell.Out = append(cell.Out, t)
}

// AddSink connects net t to an input pin of cell c.
func (n *Netlist) AddSink(t NetID, c CellID) {
	net := &n.Nets[t]
	net.Sinks = append(net.Sinks, c)
	cell := &n.Cells[c]
	cell.In = append(cell.In, t)
}

// AddPort declares a top-level port attached to net t.
func (n *Netlist) AddPort(name string, t NetID, dir Dir, width int) {
	n.Ports = append(n.Ports, Port{Name: name, Net: t, Dir: dir, Width: width})
}

// NumCells returns the number of cells.
func (n *Netlist) NumCells() int { return len(n.Cells) }

// NumNets returns the number of nets.
func (n *Netlist) NumNets() int { return len(n.Nets) }

// CountKind returns the number of cells of the given kind.
func (n *Netlist) CountKind(k Kind) int {
	c := 0
	for i := range n.Cells {
		if n.Cells[i].Kind == k {
			c++
		}
	}
	return c
}

// Resources tallies the resource usage of the whole netlist.
func (n *Netlist) Resources() Resources {
	var r Resources
	for i := range n.Cells {
		r.AddCell(n.Cells[i].Kind)
	}
	return r
}

// Check validates structural invariants: every pin reference is in range,
// every net's driver/sink lists agree with the cells' pin lists, and every
// net has at most one driver. It returns the first violation found.
func (n *Netlist) Check() error {
	for i := range n.Cells {
		c := &n.Cells[i]
		if c.ID != CellID(i) {
			return fmt.Errorf("netlist %s: cell %d has mismatched ID %d", n.Name, i, c.ID)
		}
		for _, t := range c.In {
			if t < 0 || int(t) >= len(n.Nets) {
				return fmt.Errorf("netlist %s: cell %q input net %d out of range", n.Name, c.Name, t)
			}
			if !containsCell(n.Nets[t].Sinks, c.ID) {
				return fmt.Errorf("netlist %s: cell %q lists net %q as input but is not a sink", n.Name, c.Name, n.Nets[t].Name)
			}
		}
		for _, t := range c.Out {
			if t < 0 || int(t) >= len(n.Nets) {
				return fmt.Errorf("netlist %s: cell %q output net %d out of range", n.Name, c.Name, t)
			}
			if n.Nets[t].Driver != c.ID {
				return fmt.Errorf("netlist %s: cell %q lists net %q as output but is not its driver", n.Name, c.Name, n.Nets[t].Name)
			}
		}
	}
	for i := range n.Nets {
		t := &n.Nets[i]
		if t.ID != NetID(i) {
			return fmt.Errorf("netlist %s: net %d has mismatched ID %d", n.Name, i, t.ID)
		}
		if t.Width < 1 {
			return fmt.Errorf("netlist %s: net %q has width %d", n.Name, t.Name, t.Width)
		}
		if t.Driver != NoCell {
			if int(t.Driver) >= len(n.Cells) {
				return fmt.Errorf("netlist %s: net %q driver %d out of range", n.Name, t.Name, t.Driver)
			}
			if !containsNet(n.Cells[t.Driver].Out, t.ID) {
				return fmt.Errorf("netlist %s: net %q driver cell does not list it as output", n.Name, t.Name)
			}
		}
		for _, s := range t.Sinks {
			if s < 0 || int(s) >= len(n.Cells) {
				return fmt.Errorf("netlist %s: net %q sink %d out of range", n.Name, t.Name, s)
			}
		}
	}
	for _, p := range n.Ports {
		if p.Net < 0 || int(p.Net) >= len(n.Nets) {
			return fmt.Errorf("netlist %s: port %q references net %d out of range", n.Name, p.Name, p.Net)
		}
	}
	return nil
}

// Stats summarizes the netlist for human-readable reports.
func (n *Netlist) Stats() string {
	r := n.Resources()
	return fmt.Sprintf("%s: %d cells, %d nets (%s)", n.Name, len(n.Cells), len(n.Nets), r)
}

// SortPorts orders ports by name for deterministic output.
func (n *Netlist) SortPorts() {
	sort.Slice(n.Ports, func(i, j int) bool { return n.Ports[i].Name < n.Ports[j].Name })
}

func containsCell(s []CellID, c CellID) bool {
	for _, v := range s {
		if v == c {
			return true
		}
	}
	return false
}

func containsNet(s []NetID, t NetID) bool {
	for _, v := range s {
		if v == t {
			return true
		}
	}
	return false
}
