package netlist

import "sort"

// This file provides graph views and algorithms over a Netlist that the
// packing and partitioning stages rely on: weighted cell adjacency,
// connected components, and a sequential-aware topological ordering.

// Edge is one weighted undirected adjacency entry produced by Adjacency.
type Edge struct {
	To     CellID
	Weight int // accumulated net width between the two cells
}

// Adjacency builds a weighted undirected adjacency list over cells.
// Two cells are adjacent if some net connects them (driver-to-sink); the
// edge weight accumulates the widths of all such nets. Nets whose fanout
// exceeds maxFanout (for example clock or reset trees) are skipped, the
// standard practice in partitioning since such nets carry no locality
// information. Pass maxFanout <= 0 to include all nets.
func (n *Netlist) Adjacency(maxFanout int) [][]Edge {
	return n.AdjacencyCapped(maxFanout, 0)
}

// AdjacencyCapped is Adjacency with an additional width filter: nets whose
// Width is maxWidth or more are skipped (pass maxWidth <= 0 to include all
// widths). Wide buses are natural module interfaces; the packing stage uses
// this view so clusters do not straddle them.
func (n *Netlist) AdjacencyCapped(maxFanout, maxWidth int) [][]Edge {
	type key struct{ a, b CellID }
	weights := make(map[key]int)
	for i := range n.Nets {
		t := &n.Nets[i]
		if t.Driver == NoCell {
			continue
		}
		if maxFanout > 0 && len(t.Sinks) > maxFanout {
			continue
		}
		if maxWidth > 0 && t.Width >= maxWidth {
			continue
		}
		for _, s := range t.Sinks {
			if s == t.Driver {
				continue // self-loop (e.g. feedback on one cell) carries no cut cost
			}
			a, b := t.Driver, s
			if a > b {
				a, b = b, a
			}
			weights[key{a, b}] += t.Width
		}
	}
	adj := make([][]Edge, len(n.Cells))
	for k, w := range weights {
		adj[k.a] = append(adj[k.a], Edge{To: k.b, Weight: w})
		adj[k.b] = append(adj[k.b], Edge{To: k.a, Weight: w})
	}
	// The map range above emits edges in random order; every consumer that
	// walks an edge list (packing BFS, partition clustering) would inherit
	// that randomness, making placements — and bitstream payloads — vary
	// run to run. Sorting by neighbour restores determinism.
	for c := range adj {
		sort.Slice(adj[c], func(i, j int) bool { return adj[c][i].To < adj[c][j].To })
	}
	return adj
}

// ConnectedComponents labels every cell with a component index using the
// adjacency relation (all nets, no fanout cap) and returns the labels and
// the number of components. Isolated cells each form their own component.
func (n *Netlist) ConnectedComponents() (labels []int, count int) {
	labels = make([]int, len(n.Cells))
	for i := range labels {
		labels[i] = -1
	}
	adj := n.Adjacency(0)
	var stack []CellID
	for start := range n.Cells {
		if labels[start] != -1 {
			continue
		}
		labels[start] = count
		stack = append(stack[:0], CellID(start))
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range adj[c] {
				if labels[e.To] == -1 {
					labels[e.To] = count
					stack = append(stack, e.To)
				}
			}
		}
		count++
	}
	return labels, count
}

// TopoOrder returns the cells in a dataflow order: combinational fan-in
// before fan-out, with sequential elements (DFF, BRAM, DSP with registered
// outputs) treated as cycle breakers — their outputs are considered
// available at the start of a cycle. The returned order always contains all
// cells; purely combinational loops (illegal in synthesized hardware, but
// possible in hand-built netlists) are broken arbitrarily and reported via
// the second return value.
func (n *Netlist) TopoOrder() (order []CellID, combLoop bool) {
	// In-degree counts only combinational input edges: edges from a LUT/IO
	// driver. Edges out of sequential cells do not constrain ordering.
	indeg := make([]int, len(n.Cells))
	succ := make([][]CellID, len(n.Cells))
	sequential := func(k Kind) bool {
		return k == KindDFF || k == KindBRAM || k == KindDSP
	}
	for i := range n.Nets {
		t := &n.Nets[i]
		if t.Driver == NoCell || sequential(n.Cells[t.Driver].Kind) {
			continue
		}
		for _, s := range t.Sinks {
			if s == t.Driver {
				continue
			}
			succ[t.Driver] = append(succ[t.Driver], s)
			indeg[s]++
		}
	}
	order = make([]CellID, 0, len(n.Cells))
	queue := make([]CellID, 0, len(n.Cells))
	for i := range n.Cells {
		if indeg[i] == 0 {
			queue = append(queue, CellID(i))
		}
	}
	visited := make([]bool, len(n.Cells))
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		if visited[c] {
			continue
		}
		visited[c] = true
		order = append(order, c)
		for _, s := range succ[c] {
			indeg[s]--
			if indeg[s] == 0 && !visited[s] {
				queue = append(queue, s)
			}
		}
	}
	if len(order) < len(n.Cells) {
		combLoop = true
		for i := range n.Cells {
			if !visited[i] {
				order = append(order, CellID(i))
			}
		}
	}
	return order, combLoop
}

// CutWidth computes the total width in bits of nets that cross the given
// cell partition: assign[c] is the part index of cell c. A net contributes
// its Width once for every distinct pair of parts it touches beyond the
// first (i.e. width × (parts touched − 1)), matching the buffer cost of the
// latency-insensitive interface which needs one channel per foreign part.
func (n *Netlist) CutWidth(assign []int) int {
	total := 0
	seen := make(map[int]bool, 8)
	for i := range n.Nets {
		t := &n.Nets[i]
		if t.Driver == NoCell {
			continue
		}
		clear(seen)
		seen[assign[t.Driver]] = true
		for _, s := range t.Sinks {
			seen[assign[s]] = true
		}
		if len(seen) > 1 {
			total += t.Width * (len(seen) - 1)
		}
	}
	return total
}

// ExternalDegree returns, for each cell, the summed width of nets that
// connect the cell to any cell outside the given set. Used by interface
// generation to size per-block I/O.
func (n *Netlist) ExternalDegree(inSet func(CellID) bool) map[CellID]int {
	deg := make(map[CellID]int)
	for i := range n.Nets {
		t := &n.Nets[i]
		if t.Driver == NoCell {
			continue
		}
		driverIn := inSet(t.Driver)
		anySinkOut := false
		for _, s := range t.Sinks {
			if inSet(s) != driverIn {
				anySinkOut = true
				break
			}
		}
		if !anySinkOut {
			continue
		}
		if driverIn {
			deg[t.Driver] += t.Width
		}
		for _, s := range t.Sinks {
			if inSet(s) == driverIn {
				continue
			}
			deg[s] += t.Width
		}
	}
	return deg
}
