package netlist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildChain constructs IO -> LUT -> DFF -> LUT -> IO.
func buildChain(t *testing.T) *Netlist {
	t.Helper()
	n := New("chain")
	in := n.AddCell(KindIO, "in")
	l1 := n.AddCell(KindLUT, "l1")
	ff := n.AddCell(KindDFF, "ff")
	l2 := n.AddCell(KindLUT, "l2")
	out := n.AddCell(KindIO, "out")

	n0 := n.AddNet("n0", 1)
	n1 := n.AddNet("n1", 1)
	n2 := n.AddNet("n2", 1)
	n3 := n.AddNet("n3", 1)

	n.SetDriver(n0, in)
	n.AddSink(n0, l1)
	n.SetDriver(n1, l1)
	n.AddSink(n1, ff)
	n.SetDriver(n2, ff)
	n.AddSink(n2, l2)
	n.SetDriver(n3, l2)
	n.AddSink(n3, out)
	if err := n.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	return n
}

func TestBuilderAndCheck(t *testing.T) {
	n := buildChain(t)
	if n.NumCells() != 5 || n.NumNets() != 4 {
		t.Fatalf("got %d cells, %d nets", n.NumCells(), n.NumNets())
	}
	if got := n.CountKind(KindLUT); got != 2 {
		t.Fatalf("CountKind(LUT) = %d, want 2", got)
	}
	r := n.Resources()
	want := Resources{LUTs: 2, DFFs: 1}
	if r != want {
		t.Fatalf("Resources = %+v, want %+v", r, want)
	}
}

func TestSetDriverPanicsOnDoubleDrive(t *testing.T) {
	n := New("dd")
	a := n.AddCell(KindLUT, "a")
	b := n.AddCell(KindLUT, "b")
	t0 := n.AddNet("t", 1)
	n.SetDriver(t0, a)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double drive")
		}
	}()
	n.SetDriver(t0, b)
}

func TestCheckDetectsCorruption(t *testing.T) {
	n := buildChain(t)
	// Corrupt: net claims a sink that does not list it as an input.
	n.Nets[0].Sinks = append(n.Nets[0].Sinks, 4)
	// Cell 4 (out) gains an input net reference mismatch the other way.
	n.Cells[3].In = append(n.Cells[3].In, 0)
	if err := n.Check(); err == nil {
		t.Fatal("Check passed on corrupted netlist")
	}
}

func TestCheckRejectsBadWidth(t *testing.T) {
	n := New("w")
	id := n.AddNet("t", 4)
	n.Nets[id].Width = 0
	if err := n.Check(); err == nil {
		t.Fatal("Check accepted width 0")
	}
}

func TestAddNetClampsWidth(t *testing.T) {
	n := New("w")
	id := n.AddNet("t", -5)
	if n.Nets[id].Width != 1 {
		t.Fatalf("width = %d, want 1", n.Nets[id].Width)
	}
}

func TestAdjacencyWeightsAndFanoutCap(t *testing.T) {
	n := New("adj")
	a := n.AddCell(KindLUT, "a")
	b := n.AddCell(KindLUT, "b")
	c := n.AddCell(KindLUT, "c")
	// Two nets a->b of widths 8 and 8 accumulate to one edge of weight 16.
	for i := 0; i < 2; i++ {
		t0 := n.AddNet("ab", 8)
		n.SetDriver(t0, a)
		n.AddSink(t0, b)
	}
	// High-fanout net from c to both a and b.
	hf := n.AddNet("hf", 1)
	n.SetDriver(hf, c)
	n.AddSink(hf, a)
	n.AddSink(hf, b)

	adj := n.Adjacency(0)
	wAB := 0
	for _, e := range adj[a] {
		if e.To == b {
			wAB = e.Weight
		}
	}
	if wAB != 16 {
		t.Fatalf("edge a-b weight = %d, want 16", wAB)
	}
	// With maxFanout 1 the 2-sink net is dropped.
	adj = n.Adjacency(1)
	for _, e := range adj[c] {
		t.Fatalf("expected no edges from c with fanout cap, got %+v", e)
	}
}

func TestConnectedComponents(t *testing.T) {
	n := buildChain(t)
	// Add an isolated pair.
	x := n.AddCell(KindLUT, "x")
	y := n.AddCell(KindDFF, "y")
	t0 := n.AddNet("xy", 1)
	n.SetDriver(t0, x)
	n.AddSink(t0, y)
	// And one fully isolated cell.
	n.AddCell(KindLUT, "lonely")

	labels, count := n.ConnectedComponents()
	if count != 3 {
		t.Fatalf("components = %d, want 3", count)
	}
	if labels[0] != labels[4] {
		t.Fatal("chain endpoints should share a component")
	}
	if labels[5] != labels[6] {
		t.Fatal("x and y should share a component")
	}
	if labels[5] == labels[0] || labels[7] == labels[0] {
		t.Fatal("separate components should have distinct labels")
	}
}

func TestTopoOrderRespectsCombDependencies(t *testing.T) {
	n := buildChain(t)
	order, loop := n.TopoOrder()
	if loop {
		t.Fatal("unexpected combinational loop")
	}
	pos := make(map[CellID]int)
	for i, c := range order {
		pos[c] = i
	}
	if len(order) != n.NumCells() {
		t.Fatalf("order misses cells: %d of %d", len(order), n.NumCells())
	}
	// in (0) before l1 (1); l1 before ff (2). ff -> l2 is sequential, no constraint.
	if pos[0] > pos[1] || pos[1] > pos[2] {
		t.Fatalf("bad order %v", order)
	}
}

func TestTopoOrderFlagsCombLoop(t *testing.T) {
	n := New("loop")
	a := n.AddCell(KindLUT, "a")
	b := n.AddCell(KindLUT, "b")
	t0 := n.AddNet("ab", 1)
	t1 := n.AddNet("ba", 1)
	n.SetDriver(t0, a)
	n.AddSink(t0, b)
	n.SetDriver(t1, b)
	n.AddSink(t1, a)
	order, loop := n.TopoOrder()
	if !loop {
		t.Fatal("combinational loop not detected")
	}
	if len(order) != 2 {
		t.Fatalf("order must still contain all cells, got %d", len(order))
	}
}

func TestCutWidth(t *testing.T) {
	n := New("cut")
	a := n.AddCell(KindLUT, "a")
	b := n.AddCell(KindLUT, "b")
	c := n.AddCell(KindLUT, "c")
	t0 := n.AddNet("abc", 32)
	n.SetDriver(t0, a)
	n.AddSink(t0, b)
	n.AddSink(t0, c)

	if w := n.CutWidth([]int{0, 0, 0}); w != 0 {
		t.Fatalf("uncut width = %d, want 0", w)
	}
	if w := n.CutWidth([]int{0, 1, 0}); w != 32 {
		t.Fatalf("2-part cut = %d, want 32", w)
	}
	if w := n.CutWidth([]int{0, 1, 2}); w != 64 {
		t.Fatalf("3-part cut = %d, want 64 (width × (parts−1))", w)
	}
}

func TestExternalDegree(t *testing.T) {
	n := buildChain(t)
	// Set = {l1, ff} (cells 1, 2). Crossing nets: n0 (in->l1) and n2 (ff->l2).
	in := func(c CellID) bool { return c == 1 || c == 2 }
	deg := n.ExternalDegree(in)
	if deg[1] != 1 { // l1 receives n0 from outside
		t.Fatalf("deg[l1] = %d, want 1", deg[1])
	}
	if deg[2] != 1 { // ff drives n2 out of the set
		t.Fatalf("deg[ff] = %d, want 1", deg[2])
	}
}

// randomNetlist builds a structurally valid random netlist from a seed.
func randomNetlist(seed int64, nCells, nNets int) *Netlist {
	rng := rand.New(rand.NewSource(seed))
	n := New("rand")
	kinds := []Kind{KindLUT, KindLUT, KindLUT, KindDFF, KindDSP, KindBRAM}
	for i := 0; i < nCells; i++ {
		n.AddCell(kinds[rng.Intn(len(kinds))], "c")
	}
	for i := 0; i < nNets; i++ {
		t := n.AddNet("t", 1+rng.Intn(64))
		n.SetDriver(t, CellID(rng.Intn(nCells)))
		for s := 0; s < 1+rng.Intn(4); s++ {
			n.AddSink(t, CellID(rng.Intn(nCells)))
		}
	}
	return n
}

func TestQuickRandomNetlistsAreValid(t *testing.T) {
	f := func(seed int64) bool {
		n := randomNetlist(seed, 50, 120)
		return n.Check() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: resource vector equals sum over kinds, and CutWidth of the
// all-same assignment is always zero.
func TestQuickResourceAndCutInvariants(t *testing.T) {
	f := func(seed int64) bool {
		n := randomNetlist(seed, 40, 100)
		r := n.Resources()
		if r.LUTs != n.CountKind(KindLUT) || r.DFFs != n.CountKind(KindDFF) ||
			r.DSPs != n.CountKind(KindDSP) || r.BRAMKb != n.CountKind(KindBRAM)*BRAMKb {
			return false
		}
		assign := make([]int, n.NumCells())
		return n.CutWidth(assign) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: TopoOrder is a permutation of all cells.
func TestQuickTopoOrderIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		n := randomNetlist(seed, 60, 150)
		order, _ := n.TopoOrder()
		if len(order) != n.NumCells() {
			return false
		}
		seen := make([]bool, n.NumCells())
		for _, c := range order {
			if seen[c] {
				return false
			}
			seen[c] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
