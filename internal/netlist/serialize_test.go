package netlist

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestSerializeRoundTrip(t *testing.T) {
	n := buildChain(t)
	n.AddPort("clk in", 0, DirIn, 1)
	n.AddPort("dout", 3, DirOut, 1)
	var buf bytes.Buffer
	if _, err := n.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != n.Name || got.NumCells() != n.NumCells() || got.NumNets() != n.NumNets() {
		t.Fatalf("round trip changed shape: %s vs %s", got.Stats(), n.Stats())
	}
	for i := range n.Cells {
		if got.Cells[i].Kind != n.Cells[i].Kind || got.Cells[i].Name != n.Cells[i].Name {
			t.Fatalf("cell %d differs", i)
		}
	}
	for i := range n.Nets {
		a, b := &n.Nets[i], &got.Nets[i]
		if a.Width != b.Width || a.Driver != b.Driver || len(a.Sinks) != len(b.Sinks) {
			t.Fatalf("net %d differs", i)
		}
	}
	if len(got.Ports) != 2 || got.Ports[0].Name != "clk in" {
		t.Fatalf("ports = %+v", got.Ports)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := []string{
		"",                                // empty
		"cell 0 LUT a",                    // before header
		"netlist x\ncell 1 LUT a",         // non-dense ID
		"netlist x\ncell 0 GPU a",         // unknown kind
		"netlist x\nnet 0 0 w",            // zero width
		"netlist x\nnet 0 1 w\ndrive 0 5", // cell out of range
		"netlist x\nbogus 1 2 3",          // unknown directive
		"netlist x\nnetlist y",            // duplicate header
		"netlist x\nnet 0 1 w\nport p 0 sideways 1",                              // bad direction
		"netlist x\ncell 0 LUT a\ncell 1 LUT b\nnet 0 1 w\ndrive 0 0\ndrive 0 1", // double drive
	}
	for i, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("case %d parsed without error:\n%s", i, src)
		}
	}
}

func TestParseSkipsCommentsAndBlank(t *testing.T) {
	src := "# a comment\n\nnetlist demo\n# another\ncell 0 LUT l0\n"
	n, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "demo" || n.NumCells() != 1 {
		t.Fatalf("parsed %s", n.Stats())
	}
}

// Property: random valid netlists survive a round trip bit-exactly in all
// structural respects.
func TestQuickSerializeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		n := randomNetlist(seed, 30, 60)
		var buf bytes.Buffer
		if _, err := n.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Parse(&buf)
		if err != nil {
			return false
		}
		if got.NumCells() != n.NumCells() || got.NumNets() != n.NumNets() {
			return false
		}
		if got.Resources() != n.Resources() {
			return false
		}
		for i := range n.Nets {
			if got.Nets[i].Driver != n.Nets[i].Driver || got.Nets[i].Width != n.Nets[i].Width {
				return false
			}
		}
		return got.CutWidth(make([]int, got.NumCells())) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
