package netlist

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestResourcesArithmetic(t *testing.T) {
	a := Resources{LUTs: 10, DFFs: 20, DSPs: 2, BRAMKb: 72}
	b := Resources{LUTs: 5, DFFs: 5, DSPs: 1, BRAMKb: 36}
	sum := a.Add(b)
	if sum != (Resources{15, 25, 3, 108}) {
		t.Fatalf("Add = %+v", sum)
	}
	if d := sum.Sub(b); d != a {
		t.Fatalf("Sub = %+v, want %+v", d, a)
	}
	if s := b.Scale(3); s != (Resources{15, 15, 3, 108}) {
		t.Fatalf("Scale = %+v", s)
	}
}

func TestFitsIn(t *testing.T) {
	capacity := Resources{LUTs: 100, DFFs: 200, DSPs: 10, BRAMKb: 360}
	if !(Resources{100, 200, 10, 360}).FitsIn(capacity) {
		t.Fatal("exact fit rejected")
	}
	if (Resources{101, 0, 0, 0}).FitsIn(capacity) {
		t.Fatal("LUT overflow accepted")
	}
	if (Resources{0, 0, 11, 0}).FitsIn(capacity) {
		t.Fatal("DSP overflow accepted")
	}
}

func TestMaxRatio(t *testing.T) {
	capacity := Resources{LUTs: 100, DFFs: 200, DSPs: 10, BRAMKb: 100}
	d := Resources{LUTs: 50, DFFs: 100, DSPs: 9, BRAMKb: 10}
	if got := d.MaxRatio(capacity); got != 0.9 {
		t.Fatalf("MaxRatio = %v, want 0.9", got)
	}
	if got := (Resources{}).MaxRatio(Resources{}); got != 0 {
		t.Fatalf("zero/zero MaxRatio = %v, want 0", got)
	}
	if got := (Resources{LUTs: 1}).MaxRatio(Resources{}); got < 1e17 {
		t.Fatalf("demand with zero capacity should be huge, got %v", got)
	}
}

func TestBlocksNeeded(t *testing.T) {
	// Paper Table 4 physical block capacity.
	block := Resources{LUTs: 79200, DFFs: 158400, DSPs: 580, BRAMKb: 4320}
	cases := []struct {
		name string
		r    Resources
		want int
	}{
		{"empty", Resources{}, 0},
		{"tiny", Resources{LUTs: 1}, 1},
		{"exactly one block", block, 1},
		{"one more LUT", Resources{LUTs: 79201}, 2},
		// Table 2 large accel: 269k LUT / 268.7k DFF / 520 DSP / 31.3 Mb.
		// BRAM binds: ceil(32051/4320) = 8 is the lower bound; the paper's
		// partitioner actually uses 10 blocks for this design.
		{"large accel lower bound", Resources{LUTs: 269000, DFFs: 268700, DSPs: 520, BRAMKb: 32051}, 8},
	}
	for _, c := range cases {
		if got := c.r.BlocksNeeded(block); got != c.want {
			t.Errorf("%s: BlocksNeeded = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestResourcesString(t *testing.T) {
	r := Resources{LUTs: 79200, DFFs: 158400, DSPs: 580, BRAMKb: 4320}
	s := r.String()
	for _, want := range []string{"79.2k LUT", "158.4k DFF", "580 DSP", "4.22 Mb BRAM"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String %q missing %q", s, want)
		}
	}
}

// Property: Add is commutative and Sub inverts Add; FitsIn is monotone.
func TestQuickResourceAlgebra(t *testing.T) {
	norm := func(r Resources) Resources {
		abs := func(v int) int {
			if v < 0 {
				v = -v
			}
			return v % 100000
		}
		return Resources{abs(r.LUTs), abs(r.DFFs), abs(r.DSPs), abs(r.BRAMKb)}
	}
	f := func(a, b Resources) bool {
		a, b = norm(a), norm(b)
		if a.Add(b) != b.Add(a) {
			return false
		}
		if a.Add(b).Sub(b) != a {
			return false
		}
		// a always fits in a+b for non-negative vectors.
		return a.FitsIn(a.Add(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: BlocksNeeded is the minimal feasible count — the returned count
// scaled by the block capacity fits the demand, and one fewer does not
// (unless the count is 0).
func TestQuickBlocksNeededMinimal(t *testing.T) {
	block := Resources{LUTs: 79200, DFFs: 158400, DSPs: 580, BRAMKb: 4320}
	f := func(a Resources) bool {
		abs := func(v int) int {
			if v < 0 {
				v = -v
			}
			return v % 1000000
		}
		r := Resources{abs(a.LUTs), abs(a.DFFs), abs(a.DSPs), abs(a.BRAMKb)}
		k := r.BlocksNeeded(block)
		if !r.FitsIn(block.Scale(k)) {
			return false
		}
		if k > 0 && r.FitsIn(block.Scale(k-1)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
