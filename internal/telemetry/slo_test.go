package telemetry

import (
	"math"
	"testing"
	"time"
)

// fixedSLO builds a tracker with a synthetic clock so window math is
// deterministic.
func fixedSLO(obj SLOObjective, rules []BurnRateRule) (*SLO, *time.Time) {
	s := NewSLO(obj, rules)
	now := time.Unix(1700000000, 0)
	s.now = func() time.Time { return now }
	return s, &now
}

func TestSLOBudgetAccounting(t *testing.T) {
	s, _ := fixedSLO(SLOObjective{Target: 0.9, Window: time.Minute}, nil)

	st := s.Status()
	if st.Total != 0 || st.BudgetRemaining != 1 {
		t.Fatalf("empty status = %+v, want full budget", st)
	}

	// 100 requests at a 10% target: 10 errors are allowed. 5 errors spend
	// half the budget.
	for i := 0; i < 95; i++ {
		s.Record(true)
	}
	for i := 0; i < 5; i++ {
		s.Record(false)
	}
	st = s.Status()
	if st.Total != 100 || st.Errors != 5 {
		t.Fatalf("totals = %d/%d, want 100/5", st.Errors, st.Total)
	}
	if math.Abs(st.ErrorRate-0.05) > 1e-9 {
		t.Fatalf("error rate = %v, want 0.05", st.ErrorRate)
	}
	if math.Abs(st.BudgetRemaining-0.5) > 1e-9 {
		t.Fatalf("budget remaining = %v, want 0.5", st.BudgetRemaining)
	}

	// 10 more errors overspend: remaining goes negative.
	for i := 0; i < 10; i++ {
		s.Record(false)
	}
	if st = s.Status(); st.BudgetRemaining >= 0 {
		t.Fatalf("overspent budget remaining = %v, want < 0", st.BudgetRemaining)
	}
}

func TestSLOWindowExpiry(t *testing.T) {
	s, now := fixedSLO(SLOObjective{Target: 0.9, Window: time.Minute}, nil)
	for i := 0; i < 10; i++ {
		s.Record(false)
	}
	if st := s.Status(); st.Errors != 10 {
		t.Fatalf("errors = %d, want 10", st.Errors)
	}
	// Advance past the window: the errors age out and the budget refills.
	*now = now.Add(2 * time.Minute)
	st := s.Status()
	if st.Total != 0 || st.BudgetRemaining != 1 {
		t.Fatalf("after expiry status = %+v, want empty window", st)
	}
}

func TestSLOBurnRates(t *testing.T) {
	rule := BurnRateRule{Name: "fast", Short: 10 * time.Second, Long: time.Minute, Factor: 5}
	s, now := fixedSLO(SLOObjective{Target: 0.9, Window: time.Hour}, []BurnRateRule{rule})

	// An empty window burns nothing.
	if b := s.RuleBurn(rule); b != 0 {
		t.Fatalf("empty burn = %v, want 0", b)
	}

	// 100% failures against a 10% allowance: both windows burn at 10x.
	for i := 0; i < 20; i++ {
		s.Record(false)
	}
	if b := s.RuleBurn(rule); math.Abs(b-10) > 1e-9 {
		t.Fatalf("all-failing burn = %v, want 10", b)
	}

	// Recovery: fill the short window with successes. The long window
	// still remembers the failures, but RuleBurn takes the min, so the
	// alert condition clears with the short window.
	*now = now.Add(15 * time.Second)
	for i := 0; i < 20; i++ {
		s.Record(true)
	}
	st := s.Status()
	if len(st.Burn) != 1 {
		t.Fatalf("burn statuses = %+v", st.Burn)
	}
	b := st.Burn[0]
	if b.ShortBurn != 0 {
		t.Fatalf("short burn after recovery = %v, want 0", b.ShortBurn)
	}
	if b.LongBurn <= 0 {
		t.Fatalf("long burn after recovery = %v, want > 0", b.LongBurn)
	}
	if b.Burn != 0 {
		t.Fatalf("effective burn = %v, want 0 (min of windows)", b.Burn)
	}
}

func TestSLOBurnRuleTripsAlertEngine(t *testing.T) {
	rule := BurnRateRule{Name: "fast", Short: 10 * time.Second, Long: time.Minute, Factor: 5}
	s, _ := fixedSLO(SLOObjective{Target: 0.9, Window: time.Hour}, []BurnRateRule{rule})

	eng := NewAlertEngine(nil)
	if err := eng.AddRule(AlertRule{
		Name:      "slo_fast",
		Source:    func() float64 { return s.RuleBurn(rule) },
		Op:        OpGreater,
		Threshold: rule.Factor,
	}); err != nil {
		t.Fatal(err)
	}
	at := time.Unix(1700000100, 0)
	eng.Eval(at)
	if v := eng.StateValueOf("slo_fast"); v != 0 {
		t.Fatalf("alert state before burn = %v, want inactive", v)
	}
	for i := 0; i < 20; i++ {
		s.Record(false)
	}
	eng.Eval(at.Add(time.Second))
	if v := eng.StateValueOf("slo_fast"); v != 2 {
		t.Fatalf("alert state during 10x burn = %v, want firing (2)", v)
	}
}

func TestSLOSetPerSubject(t *testing.T) {
	ss := NewSLOSet(SLOObjective{Target: 0.9, Window: time.Minute}, DefaultBurnRateRules())
	ss.Record("alice", true)
	ss.Record("bob", false)
	st := ss.Status()
	if len(st) != 2 {
		t.Fatalf("subjects = %v", ss.Names())
	}
	if st["alice"].Errors != 0 || st["bob"].Errors != 1 {
		t.Fatalf("status = %+v", st)
	}
	if names := ss.Names(); len(names) != 2 || names[0] != "alice" || names[1] != "bob" {
		t.Fatalf("names = %v", names)
	}
}
