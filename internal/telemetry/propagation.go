package telemetry

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// TraceParentHeader is the HTTP header carrying the serialized span
// context between processes, following the W3C trace-context shape:
//
//	00-<32 hex trace-id>-<16 hex parent-span-id>-<2 hex flags>
//
// vitalgw injects it on every backend call; the instrumentation
// middleware in vitald extracts it and continues the trace as a remote
// child segment.
const TraceParentHeader = "traceparent"

// traceParentVersion is the only version this implementation emits.
const traceParentVersion = "00"

// SpanContext is the wire-propagatable identity of a span: enough to
// continue its trace in another process (or across an async boundary in
// the same process).
type SpanContext struct {
	TraceID string // 32 lowercase hex chars, not all-zero
	SpanID  int64  // nonzero
	Sampled bool
}

// Valid reports whether the context identifies a real span.
func (sc SpanContext) Valid() bool {
	return validTraceID(sc.TraceID) && sc.SpanID != 0
}

// TraceParent serializes the context in traceparent form. Invalid
// contexts serialize to "".
func (sc SpanContext) TraceParent() string {
	if !sc.Valid() {
		return ""
	}
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return fmt.Sprintf("%s-%s-%016x-%s", traceParentVersion, sc.TraceID, uint64(sc.SpanID), flags)
}

func validTraceID(id string) bool {
	if len(id) != 32 {
		return false
	}
	zero := true
	for i := 0; i < len(id); i++ {
		c := id[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			zero = false
		}
	}
	return !zero
}

// ParseTraceParent parses a traceparent header value. It is strict: a
// malformed value (wrong field count or length, uppercase or non-hex
// digits, the forbidden version ff, an all-zero trace or span ID, bad
// flags) returns an error, and callers fall back to starting a fresh
// root span rather than adopting a corrupt identity.
func ParseTraceParent(s string) (SpanContext, error) {
	parts := strings.Split(s, "-")
	if len(parts) != 4 {
		return SpanContext{}, fmt.Errorf("traceparent: want 4 fields, got %d", len(parts))
	}
	version, traceID, spanID, flags := parts[0], parts[1], parts[2], parts[3]
	if len(version) != 2 || !isLowerHex(version) {
		return SpanContext{}, fmt.Errorf("traceparent: bad version %q", version)
	}
	if version == "ff" {
		return SpanContext{}, fmt.Errorf("traceparent: version ff is forbidden")
	}
	if !validTraceID(traceID) {
		return SpanContext{}, fmt.Errorf("traceparent: bad trace-id %q", traceID)
	}
	if len(spanID) != 16 || !isLowerHex(spanID) {
		return SpanContext{}, fmt.Errorf("traceparent: bad parent-id %q", spanID)
	}
	id, err := strconv.ParseUint(spanID, 16, 64)
	if err != nil || id == 0 {
		return SpanContext{}, fmt.Errorf("traceparent: bad parent-id %q", spanID)
	}
	if len(flags) != 2 || !isLowerHex(flags) {
		return SpanContext{}, fmt.Errorf("traceparent: bad flags %q", flags)
	}
	fl, err := strconv.ParseUint(flags, 16, 8)
	if err != nil {
		return SpanContext{}, fmt.Errorf("traceparent: bad flags %q", flags)
	}
	return SpanContext{TraceID: traceID, SpanID: int64(id), Sampled: fl&0x01 != 0}, nil
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// InjectTraceParent stamps the span's context onto outgoing request
// headers. A nil span is a no-op, so call sites inject unconditionally.
func InjectTraceParent(h http.Header, sp *Span) {
	if sp == nil {
		return
	}
	if tp := sp.Context().TraceParent(); tp != "" {
		h.Set(TraceParentHeader, tp)
	}
}

// ExtractTraceParent parses the incoming traceparent header, reporting
// ok=false when the header is absent or malformed (the fresh-root
// fallback).
func ExtractTraceParent(h http.Header) (SpanContext, bool) {
	v := h.Get(TraceParentHeader)
	if v == "" {
		return SpanContext{}, false
	}
	sc, err := ParseTraceParent(v)
	if err != nil {
		return SpanContext{}, false
	}
	return sc, true
}

type remoteCtxKey struct{}

// ContextWithRemote returns a context carrying a remote span context;
// downstream spans started with Tracer.StartSpan become remote children
// of it.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteCtxKey{}, sc)
}

// RemoteFromContext returns the remote span context carried by ctx.
func RemoteFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(remoteCtxKey{}).(SpanContext)
	return sc, ok
}
