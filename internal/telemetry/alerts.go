package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Alert-rule engine (DESIGN.md §11): a minimal threshold/for-duration
// evaluator in the style of Prometheus alerting rules, stdlib-only and
// clock-explicit so tests drive it deterministically. A rule samples a
// source gauge on every Eval; when the comparison holds it moves
// inactive → pending, and once it has held for the rule's For duration,
// pending → firing. Transitions to firing and back to inactive (resolved)
// are reported to the engine's transition callback — the controller
// appends them to its audit log and streams them over SSE.

// AlertOp is the comparison direction of a rule.
type AlertOp string

// Comparison operators.
const (
	OpGreater AlertOp = ">"
	OpLess    AlertOp = "<"
)

// AlertState is a rule's evaluation state.
type AlertState string

// Rule states.
const (
	AlertInactive AlertState = "inactive"
	AlertPending  AlertState = "pending"
	AlertFiring   AlertState = "firing"
)

// StateValue encodes a state for gauge export: 0 inactive, 1 pending,
// 2 firing.
func StateValue(s AlertState) float64 {
	switch s {
	case AlertPending:
		return 1
	case AlertFiring:
		return 2
	default:
		// AlertInactive, and anything unrecognized, exports as 0 so a bad
		// state can never read as an active alert.
		return 0
	}
}

// AlertRule is one threshold rule. Source is sampled at every Eval; it
// must not call back into the engine (the engine's lock is held during
// sampling).
type AlertRule struct {
	Name      string
	Help      string
	Source    func() float64
	Op        AlertOp
	Threshold float64
	// For is how long the comparison must hold before the rule fires;
	// zero fires on the first breaching evaluation.
	For time.Duration
}

// AlertTransition reports one state change worth announcing: a rule that
// started firing, or a firing rule that resolved.
type AlertTransition struct {
	Rule      string
	To        AlertState // AlertFiring or AlertInactive (resolved)
	Value     float64
	Op        AlertOp
	Threshold float64
	At        time.Time
}

// String renders the transition for audit logs.
func (t AlertTransition) String() string {
	if t.To == AlertFiring {
		return fmt.Sprintf("firing: value %.4g %s threshold %.4g", t.Value, t.Op, t.Threshold)
	}
	return fmt.Sprintf("resolved: value %.4g no longer %s threshold %.4g", t.Value, t.Op, t.Threshold)
}

// AlertStatus is one rule's externally visible state.
type AlertStatus struct {
	Rule      string     `json:"rule"`
	Help      string     `json:"help,omitempty"`
	State     AlertState `json:"state"`
	Value     float64    `json:"value"`
	Op        AlertOp    `json:"op"`
	Threshold float64    `json:"threshold"`
	ForSec    float64    `json:"for_seconds"`
	// Since is when the rule entered its current pending/firing stretch
	// (omitted while inactive).
	Since *time.Time `json:"since,omitempty"`
	// Fired counts lifetime inactive/pending → firing transitions.
	Fired uint64 `json:"fired"`
}

type ruleState struct {
	rule  AlertRule
	state AlertState
	since time.Time
	value float64
	fired uint64
}

// AlertEngine evaluates a set of rules on demand.
type AlertEngine struct {
	// onTransition is set once at construction and invoked outside the
	// engine lock, after each Eval, once per transition.
	onTransition func(AlertTransition)

	mu    sync.Mutex
	rules []*ruleState
}

// NewAlertEngine builds an engine. onTransition may be nil.
func NewAlertEngine(onTransition func(AlertTransition)) *AlertEngine {
	return &AlertEngine{onTransition: onTransition}
}

// AddRule registers a rule. Rule names must be unique.
func (e *AlertEngine) AddRule(r AlertRule) error {
	if r.Name == "" || r.Source == nil {
		return fmt.Errorf("telemetry: alert rule needs a name and a source")
	}
	if r.Op != OpGreater && r.Op != OpLess {
		return fmt.Errorf("telemetry: alert rule %q: unknown op %q", r.Name, r.Op)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, rs := range e.rules {
		if rs.rule.Name == r.Name {
			return fmt.Errorf("telemetry: duplicate alert rule %q", r.Name)
		}
	}
	e.rules = append(e.rules, &ruleState{rule: r, state: AlertInactive})
	return nil
}

// Eval evaluates every rule against its source at the given time and
// returns the transitions that occurred (also delivered to the engine's
// callback, after the lock is released).
func (e *AlertEngine) Eval(now time.Time) []AlertTransition {
	e.mu.Lock()
	var trans []AlertTransition
	for _, rs := range e.rules {
		v := rs.rule.Source()
		rs.value = v
		breach := (rs.rule.Op == OpGreater && v > rs.rule.Threshold) ||
			(rs.rule.Op == OpLess && v < rs.rule.Threshold)
		switch rs.state {
		case AlertInactive:
			if breach {
				rs.since = now
				if rs.rule.For <= 0 { // no hold time: fire immediately
					rs.state = AlertFiring
					rs.fired++
					trans = append(trans, e.transitionLocked(rs, now))
				} else {
					rs.state = AlertPending
				}
			}
		case AlertPending:
			switch {
			case !breach:
				// A pending rule never fired, so resolving it is silent.
				rs.state = AlertInactive
			case now.Sub(rs.since) >= rs.rule.For:
				rs.state = AlertFiring
				rs.fired++
				trans = append(trans, e.transitionLocked(rs, now))
			}
		case AlertFiring:
			if !breach {
				rs.state = AlertInactive
				trans = append(trans, e.transitionLocked(rs, now))
			}
		}
	}
	cb := e.onTransition
	e.mu.Unlock()
	if cb != nil {
		for _, t := range trans {
			cb(t)
		}
	}
	return trans
}

// transitionLocked snapshots a rule's state change; the caller holds e.mu.
func (e *AlertEngine) transitionLocked(rs *ruleState, now time.Time) AlertTransition {
	return AlertTransition{
		Rule:      rs.rule.Name,
		To:        rs.state,
		Value:     rs.value,
		Op:        rs.rule.Op,
		Threshold: rs.rule.Threshold,
		At:        now,
	}
}

// Status reports every rule's current state, sorted by rule name.
func (e *AlertEngine) Status() []AlertStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]AlertStatus, 0, len(e.rules))
	for _, rs := range e.rules {
		st := AlertStatus{
			Rule:      rs.rule.Name,
			Help:      rs.rule.Help,
			State:     rs.state,
			Value:     rs.value,
			Op:        rs.rule.Op,
			Threshold: rs.rule.Threshold,
			ForSec:    rs.rule.For.Seconds(),
			Fired:     rs.fired,
		}
		if rs.state != AlertInactive {
			since := rs.since
			st.Since = &since
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rule < out[j].Rule })
	return out
}

// StateValueOf returns a rule's state encoded for gauge export (0/1/2),
// or 0 for unknown rules.
func (e *AlertEngine) StateValueOf(rule string) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, rs := range e.rules {
		if rs.rule.Name == rule {
			return StateValue(rs.state)
		}
	}
	return 0
}

// Firing returns the number of rules currently firing.
func (e *AlertEngine) Firing() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, rs := range e.rules {
		if rs.state == AlertFiring {
			n++
		}
	}
	return n
}
