package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the exposition golden file")

// goldenRegistry builds a registry with fully deterministic content: fixed
// counter/gauge values, fixed histogram observations, and a constant
// scrape-time callback.
func goldenRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("vital_test_deploys_total", "Deployments processed.")
	c.Add(7)
	r.Counter("vital_test_evictions_total", "Evictions by reason.", L("reason", "capacity")).Add(2)
	r.Counter("vital_test_evictions_total", "Evictions by reason.", L("reason", "fault")).Inc()
	r.Gauge("vital_test_used_blocks", "Blocks in use per board.", L("board", "0")).Set(3)
	r.Gauge("vital_test_used_blocks", "Blocks in use per board.", L("board", "1")).Set(0)
	r.GaugeFunc("vital_test_hit_rate", "Cache hit rate.", func() float64 { return 0.75 })
	h := r.Histogram("vital_test_latency_seconds", "Operation latency.", []float64{0.001, 0.01, 0.1, 1})
	h.Observe(0.0005)
	h.Observe(0.003)
	h.Observe(0.25)
	// A labeled value that needs escaping in the exposition.
	r.Gauge("vital_test_escapes", "Label escaping.", L("detail", `quote " slash \ newline`+"\n")).Set(1)
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file (re-run with -update after an intentional change)\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestGoldenExpositionValidates(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "exposition.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(want); err != nil {
		t.Fatalf("golden exposition rejected: %v", err)
	}
}

func TestValidateExpositionAcceptsLive(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("live exposition rejected: %v", err)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{
			name: "bad metric name",
			in:   "# HELP vital-x bad\n# TYPE vital-x counter\nvital-x 1\n",
			want: "invalid metric name",
		},
		{
			name: "sample without TYPE",
			in:   "vital_x_total 1\n",
			want: "without a preceding TYPE",
		},
		{
			name: "TYPE after samples",
			in:   "# HELP vital_x x\n# TYPE vital_x counter\nvital_x 1\n# TYPE vital_x counter\n",
			want: "duplicate TYPE",
		},
		{
			name: "unknown type keyword",
			in:   "# HELP vital_x x\n# TYPE vital_x summary2\nvital_x 1\n",
			want: "unknown TYPE",
		},
		{
			name: "TYPE without HELP",
			in:   "# TYPE vital_x counter\nvital_x 1\n",
			want: "TYPE but no HELP",
		},
		{
			name: "HELP without TYPE",
			in:   "# HELP vital_x x\n",
			want: "HELP but no TYPE",
		},
		{
			name: "bad label name",
			in:   "# HELP vital_x x\n# TYPE vital_x gauge\nvital_x{0bad=\"v\"} 1\n",
			want: "invalid label name",
		},
		{
			name: "unquoted label value",
			in:   "# HELP vital_x x\n# TYPE vital_x gauge\nvital_x{k=v} 1\n",
			want: "unquoted label value",
		},
		{
			name: "bad value",
			in:   "# HELP vital_x x\n# TYPE vital_x gauge\nvital_x abc\n",
			want: "bad value",
		},
		{
			name: "non-monotone histogram buckets",
			in: "# HELP vital_h h\n# TYPE vital_h histogram\n" +
				"vital_h_bucket{le=\"0.1\"} 5\nvital_h_bucket{le=\"1\"} 3\nvital_h_bucket{le=\"+Inf\"} 3\n" +
				"vital_h_sum 1\nvital_h_count 3\n",
			want: "cumulative count decreases",
		},
		{
			name: "le not increasing",
			in: "# HELP vital_h h\n# TYPE vital_h histogram\n" +
				"vital_h_bucket{le=\"1\"} 1\nvital_h_bucket{le=\"0.1\"} 2\nvital_h_bucket{le=\"+Inf\"} 2\n" +
				"vital_h_sum 1\nvital_h_count 2\n",
			want: "le not increasing",
		},
		{
			name: "missing +Inf bucket",
			in: "# HELP vital_h h\n# TYPE vital_h histogram\n" +
				"vital_h_bucket{le=\"0.1\"} 1\nvital_h_sum 1\nvital_h_count 1\n",
			want: "want +Inf",
		},
		{
			name: "count disagrees with +Inf",
			in: "# HELP vital_h h\n# TYPE vital_h histogram\n" +
				"vital_h_bucket{le=\"+Inf\"} 3\nvital_h_sum 1\nvital_h_count 4\n",
			want: "_count 4 != +Inf bucket 3",
		},
		{
			name: "missing sum",
			in: "# HELP vital_h h\n# TYPE vital_h histogram\n" +
				"vital_h_bucket{le=\"+Inf\"} 1\nvital_h_count 1\n",
			want: "missing _sum",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateExposition([]byte(tc.in))
			if err == nil {
				t.Fatalf("accepted malformed exposition:\n%s", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want it to mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateExpositionAcceptsTimestampsAndComments(t *testing.T) {
	in := "# scraped by test\n# HELP vital_x x\n# TYPE vital_x gauge\nvital_x{k=\"a b\"} 1.5 1700000000000\n"
	if err := ValidateExposition([]byte(in)); err != nil {
		t.Fatalf("rejected legal exposition: %v", err)
	}
}
