package telemetry

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestAccessLog(t *testing.T) {
	var lines []string
	logf := func(format string, v ...interface{}) {
		lines = append(lines, fmt.Sprintf(format, v...))
	}
	h := AccessLog(logf, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		fmt.Fprint(w, "short and stout")
	}))
	req := httptest.NewRequest("GET", "/status?max=3", nil)
	h.ServeHTTP(httptest.NewRecorder(), req)
	if len(lines) != 1 {
		t.Fatalf("got %d log lines, want 1", len(lines))
	}
	for _, want := range []string{"GET", "/status?max=3", "418", "15B"} {
		if !strings.Contains(lines[0], want) {
			t.Fatalf("access log %q missing %q", lines[0], want)
		}
	}
}

func TestAccessLogDefaultsTo200(t *testing.T) {
	var line string
	h := AccessLog(func(format string, v ...interface{}) { line = fmt.Sprintf(format, v...) },
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { fmt.Fprint(w, "ok") }))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if !strings.Contains(line, " 200 ") {
		t.Fatalf("access log %q missing implicit 200", line)
	}
}

func TestInstrumentRoute(t *testing.T) {
	reg := NewRegistry()
	ok := InstrumentRoute(reg, nil, "GET /status", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "{}")
	}))
	fail := InstrumentRoute(reg, nil, "POST /deploy", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusConflict)
	}))
	for i := 0; i < 3; i++ {
		ok.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/status", nil))
	}
	fail.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/deploy", nil))

	if got := reg.Counter("vital_http_requests_total", "", L("route", "GET /status"), L("code", "200")).Value(); got != 3 {
		t.Fatalf("status route counter = %d, want 3", got)
	}
	if got := reg.Counter("vital_http_requests_total", "", L("route", "POST /deploy"), L("code", "409")).Value(); got != 1 {
		t.Fatalf("deploy route counter = %d, want 1", got)
	}
	h := reg.Histogram("vital_http_request_seconds", "", DefBuckets, L("route", "GET /status"))
	if got := h.Summary().Count; got != 3 {
		t.Fatalf("route histogram count = %d, want 3", got)
	}

	// The exposition of the instrumented registry must itself validate.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("instrumented exposition rejected: %v\n%s", err, buf.String())
	}
}
