package telemetry

import (
	"net/http"
	"strconv"
	"time"
)

// statusRecorder captures the response status and size for the access log
// and the per-route counters.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	n, err := sr.ResponseWriter.Write(p)
	sr.bytes += n
	return n, err
}

// Flush forwards to the underlying writer so streaming responses (SSE)
// work through the access-log and instrumentation wrappers.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// AccessLog wraps a handler with an HTTP access log: one line per request
// (method, path, status, response bytes, latency) through logf — vitald
// passes log.Printf.
func AccessLog(logf func(format string, v ...interface{}), next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sr, r)
		logf("%s %s %d %dB %v", r.Method, r.URL.RequestURI(), sr.status, sr.bytes, time.Since(start).Round(time.Microsecond))
	})
}

// InstrumentRoute wraps one route's handler with a per-route latency
// histogram (vital_http_request_seconds{route=...}) and a per-route,
// per-status counter (vital_http_requests_total{route=...,code=...}). The
// route label is the mux pattern, not the raw path, so path parameters
// (/trace/{id}) don't explode the series cardinality.
//
// When the request carries a valid traceparent header and tracer is
// non-nil, the middleware also opens a server span as a remote child of
// the upstream caller and threads it through the request context, so
// handler work (compile stages, deploys, async tickets) lands in the
// caller's trace. Requests without a traceparent start no span — the
// trace ring would otherwise fill with metrics scrapes and health polls.
// The server span's trace ID is recorded as the latency exemplar.
func InstrumentRoute(reg *Registry, tracer *Tracer, route string, next http.Handler) http.Handler {
	hist := reg.Histogram("vital_http_request_seconds", "HTTP request latency by route.", DefBuckets,
		L("route", route))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		var sp *Span
		if sc, ok := ExtractTraceParent(r.Header); ok {
			sp = tracer.StartRemote("http "+route, sc, String("route", route))
			if sp != nil {
				r = r.WithContext(ContextWithSpan(r.Context(), sp))
			}
		}
		next.ServeHTTP(sr, r)
		if sp != nil {
			sp.SetAttr("http.status", strconv.Itoa(sr.status))
			hist.ObserveExemplar(time.Since(start).Seconds(), sp.TraceID())
			sp.End()
		} else {
			hist.ObserveSince(start)
		}
		reg.Counter("vital_http_requests_total", "HTTP requests by route and status code.",
			L("route", route), L("code", strconv.Itoa(sr.status))).Inc()
	})
}

// ObserveStatus wraps a handler and reports the response status and
// total latency to fn after the handler returns. The gateway's tenant
// RED layer builds on this without duplicating the status-capture
// plumbing.
func ObserveStatus(next http.Handler, fn func(r *http.Request, status int, d time.Duration)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sr, r)
		fn(r, sr.status, time.Since(start))
	})
}
