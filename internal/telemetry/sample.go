package telemetry

// Sample is one flat, exposition-shaped sample of the registry: counters
// and gauges yield one sample per series; a histogram expands exactly the
// way the Prometheus text format renders it — one cumulative
// <name>_bucket sample per bound (the +Inf bucket last, under le="+Inf"),
// plus <name>_sum and <name>_count. The expansion is what makes a
// time-series store scraped from Samples able to answer
// quantile-over-histogram queries later: each bucket becomes an ordinary
// monotone counter series keyed by its le label.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Samples flattens the registry's current state into exposition-shaped
// samples in deterministic order (families by name, series by label
// signature, buckets by ascending bound). Scrape-time callbacks
// (GaugeFunc/CounterFunc) are evaluated here, outside the registry lock —
// the same snapshot-then-evaluate idiom as WritePrometheus.
func (r *Registry) Samples() []Sample {
	fams, sigs := r.collect()
	var out []Sample
	for _, f := range fams {
		for _, sig := range sigs[f.name] {
			s := f.series[sig]
			switch {
			case s.hist != nil:
				cum, count, sum := s.hist.snapshot()
				for i, upper := range s.hist.uppers {
					out = append(out, Sample{
						Name:   f.name + "_bucket",
						Labels: withLE(s.labels, formatFloat(upper)),
						Value:  float64(cum[i]),
					})
				}
				out = append(out, Sample{
					Name:   f.name + "_bucket",
					Labels: withLE(s.labels, "+Inf"),
					Value:  float64(cum[len(cum)-1]),
				})
				out = append(out,
					Sample{Name: f.name + "_sum", Labels: s.labels, Value: sum},
					Sample{Name: f.name + "_count", Labels: s.labels, Value: float64(count)})
			case s.fn != nil:
				out = append(out, Sample{Name: f.name, Labels: s.labels, Value: s.fn()})
			case s.counter != nil:
				out = append(out, Sample{Name: f.name, Labels: s.labels, Value: float64(s.counter.Value())})
			case s.gauge != nil:
				out = append(out, Sample{Name: f.name, Labels: s.labels, Value: s.gauge.Value()})
			}
		}
	}
	return out
}

// withLE appends the histogram bound label to a series' label set without
// mutating the shared slice.
func withLE(labels []Label, le string) []Label {
	out := make([]Label, 0, len(labels)+1)
	out = append(out, labels...)
	return append(out, Label{Key: "le", Value: le})
}
