package telemetry

import (
	"net/http"
	"strings"
	"testing"
)

func TestParseTraceParentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: "4bf92f3577b34da6a3ce929d0e0e4736", SpanID: 0x00f067aa0ba902b7, Sampled: true}
	tp := sc.TraceParent()
	if tp != "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01" {
		t.Fatalf("TraceParent() = %q", tp)
	}
	got, err := ParseTraceParent(tp)
	if err != nil {
		t.Fatalf("ParseTraceParent(%q): %v", tp, err)
	}
	if got != sc {
		t.Fatalf("round trip = %+v, want %+v", got, sc)
	}

	// Unsampled round trip keeps the flag clear.
	sc.Sampled = false
	got, err = ParseTraceParent(sc.TraceParent())
	if err != nil {
		t.Fatal(err)
	}
	if got.Sampled {
		t.Fatalf("unsampled context parsed as sampled")
	}
}

func TestParseTraceParentRejectsMalformed(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if _, err := ParseTraceParent(valid); err != nil {
		t.Fatalf("sanity: valid header rejected: %v", err)
	}
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"not a header", "garbage"},
		{"three fields", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7"},
		{"five fields", valid + "-extra"},
		{"version too short", "0-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
		{"version too long", "000-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
		{"version uppercase", "0A-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
		{"version ff forbidden", "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
		{"trace id short", "00-4bf92f3577b34da6a3ce929d0e0e473-00f067aa0ba902b7-01"},
		{"trace id long", "00-4bf92f3577b34da6a3ce929d0e0e47366-00f067aa0ba902b7-01"},
		{"trace id uppercase", "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01"},
		{"trace id non-hex", "00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01"},
		{"trace id all zero", "00-00000000000000000000000000000000-00f067aa0ba902b7-01"},
		{"span id short", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b-01"},
		{"span id long", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b77-01"},
		{"span id uppercase", "00-4bf92f3577b34da6a3ce929d0e0e4736-00F067AA0BA902B7-01"},
		{"span id non-hex", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902bz-01"},
		{"span id all zero", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01"},
		{"flags too short", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-1"},
		{"flags too long", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-011"},
		{"flags non-hex", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0x"},
		{"flags uppercase", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0F"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc, err := ParseTraceParent(tc.in)
			if err == nil {
				t.Fatalf("ParseTraceParent(%q) accepted, got %+v", tc.in, sc)
			}
			if sc.Valid() {
				t.Fatalf("rejected parse returned a valid context %+v", sc)
			}
		})
	}
}

func TestTraceParentInvalidContextSerializesEmpty(t *testing.T) {
	for _, sc := range []SpanContext{
		{},
		{TraceID: "4bf92f3577b34da6a3ce929d0e0e4736"},              // no span
		{SpanID: 7},                                                // no trace
		{TraceID: strings.Repeat("0", 32), SpanID: 7},              // all-zero trace
		{TraceID: strings.Repeat("A", 32), SpanID: 7},              // uppercase
		{TraceID: "4bf92f3577b34da6a3ce929d0e0e47", SpanID: 0x2a}, // short
	} {
		if tp := sc.TraceParent(); tp != "" {
			t.Errorf("invalid context %+v serialized to %q", sc, tp)
		}
	}
}

func TestExtractTraceParentFallback(t *testing.T) {
	h := http.Header{}
	if _, ok := ExtractTraceParent(h); ok {
		t.Fatal("extract from empty headers reported ok")
	}
	h.Set(TraceParentHeader, "00-borked")
	if _, ok := ExtractTraceParent(h); ok {
		t.Fatal("extract of malformed header reported ok")
	}
	h.Set(TraceParentHeader, "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	sc, ok := ExtractTraceParent(h)
	if !ok || sc.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" || sc.SpanID != 0x00f067aa0ba902b7 || !sc.Sampled {
		t.Fatalf("extract = %+v, %v", sc, ok)
	}
}

func TestInjectTraceParent(t *testing.T) {
	h := http.Header{}
	InjectTraceParent(h, nil)
	if h.Get(TraceParentHeader) != "" {
		t.Fatal("nil span injected a header")
	}
	tr := NewTracer(4)
	sp := tr.Start("op")
	InjectTraceParent(h, sp)
	sc, err := ParseTraceParent(h.Get(TraceParentHeader))
	if err != nil {
		t.Fatalf("injected header does not parse: %v", err)
	}
	if sc.TraceID != sp.TraceID() || sc.SpanID != sp.Context().SpanID {
		t.Fatalf("injected %+v, span context %+v", sc, sp.Context())
	}
	sp.End()
}

func TestStartRemoteContinuesTrace(t *testing.T) {
	tr := NewTracer(8)
	sc := SpanContext{TraceID: "4bf92f3577b34da6a3ce929d0e0e4736", SpanID: 0x2a, Sampled: true}
	sp := tr.StartRemote("server", sc)
	if sp.TraceID() != sc.TraceID {
		t.Fatalf("remote child trace = %s, want %s", sp.TraceID(), sc.TraceID)
	}
	sp.End()
	td, ok := tr.Get(sc.TraceID)
	if !ok {
		t.Fatal("remote segment not retained")
	}
	if len(td.AllSpans) != 1 || td.AllSpans[0].Parent != sc.SpanID {
		t.Fatalf("segment spans = %+v, want one span with parent %#x", td.AllSpans, sc.SpanID)
	}

	// An invalid remote context degrades to a fresh root.
	root := tr.StartRemote("server", SpanContext{})
	if root.TraceID() == "" || root.TraceID() == sc.TraceID {
		t.Fatalf("fallback root trace = %q", root.TraceID())
	}
	root.End()
}
