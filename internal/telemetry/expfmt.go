package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the registry in the Prometheus text format:
// families sorted by name, each preceded by its # HELP / # TYPE pair,
// histograms as cumulative _bucket{le=...} series plus _sum and _count.
// Scrape-time callbacks (GaugeFunc/CounterFunc) are evaluated here.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fams, sigs := r.collect()
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, sig := range sigs[f.name] {
			s := f.series[sig]
			switch {
			case s.hist != nil:
				writeHistogram(bw, f.name, s)
			case s.fn != nil:
				writeSample(bw, f.name, s.labels, nil, s.fn(), nil)
			case s.counter != nil:
				writeSample(bw, f.name, s.labels, nil, float64(s.counter.Value()), nil)
			case s.gauge != nil:
				writeSample(bw, f.name, s.labels, nil, s.gauge.Value(), nil)
			}
		}
	}
	return bw.Flush()
}

func writeHistogram(w io.Writer, name string, s *series) {
	cum, count, sum := s.hist.snapshot()
	exemplars := s.hist.Exemplars()
	for i, upper := range s.hist.uppers {
		writeSample(w, name+"_bucket", s.labels, &Label{Key: "le", Value: formatFloat(upper)}, float64(cum[i]), exemplars[i])
	}
	writeSample(w, name+"_bucket", s.labels, &Label{Key: "le", Value: "+Inf"}, float64(cum[len(cum)-1]), exemplars[len(exemplars)-1])
	writeSample(w, name+"_sum", s.labels, nil, sum, nil)
	writeSample(w, name+"_count", s.labels, nil, float64(count), nil)
}

// writeSample emits one `name{labels} value` line. extra (the histogram le
// label) is appended after the series labels; a non-nil exemplar appends
// the OpenMetrics-style `# {trace_id="..."} value` suffix linking the
// bucket to the trace that last landed in it.
func writeSample(w io.Writer, name string, labels []Label, extra *Label, value float64, ex *Exemplar) {
	suffix := ""
	if ex != nil {
		suffix = fmt.Sprintf(" # {trace_id=\"%s\"} %s", escapeLabel(ex.TraceID), formatFloat(ex.Value))
	}
	ls := labels
	if extra != nil {
		ls = append(append(make([]Label, 0, len(labels)+1), labels...), *extra)
	}
	if len(ls) == 0 {
		fmt.Fprintf(w, "%s %s%s\n", name, formatFloat(value), suffix)
		return
	}
	sorted := append([]Label(nil), ls...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	parts := make([]string, len(sorted))
	for i, l := range sorted {
		parts[i] = l.Key + `="` + escapeLabel(l.Value) + `"`
	}
	fmt.Fprintf(w, "%s{%s} %s%s\n", name, strings.Join(parts, ","), formatFloat(value), suffix)
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the text format: exactly \\, \"
// and \n — Go's %q would also emit escapes (\t, \x..) the format does not
// define, so the quoting is done by hand.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// ValidateExposition is a strict parser for the Prometheus text format:
// the golden-file CI test and `make obssmoke` run every scrape through it
// so syntax drift (bad metric names, unescaped labels, non-monotone
// histogram buckets, missing HELP/TYPE pairs) fails the build. It checks:
//
//   - comment lines are well-formed # HELP / # TYPE with valid names;
//   - every family has at most one TYPE, declared before its samples, and
//     HELP and TYPE come in pairs;
//   - sample lines parse (name, optional {labels}, float value) with valid
//     metric and label names;
//   - histogram families have _bucket series with cumulative counts that
//     are monotone non-decreasing in le, a final le="+Inf" bucket equal to
//     _count, and a _sum sample;
//   - `# {...} value` exemplar suffixes appear only on _bucket samples
//     and carry well-formed labels and a parseable value.
func ValidateExposition(data []byte) error {
	v := &expValidator{
		typed:  map[string]MetricType{},
		helped: map[string]bool{},
		hists:  map[string]*histCheck{},
	}
	for i, line := range strings.Split(string(data), "\n") {
		if err := v.line(line); err != nil {
			return fmt.Errorf("telemetry: exposition line %d: %w", i+1, err)
		}
	}
	return v.finish()
}

type histCheck struct {
	// buckets holds (le, cumulative count) per label signature, in
	// appearance order.
	buckets map[string][]bucketSample
	counts  map[string]float64
	sums    map[string]bool
}

type bucketSample struct {
	le  float64
	cum float64
}

type expValidator struct {
	typed  map[string]MetricType
	helped map[string]bool
	hists  map[string]*histCheck
}

func (v *expValidator) line(line string) error {
	if line == "" {
		return nil
	}
	if strings.HasPrefix(line, "#") {
		return v.comment(line)
	}
	return v.sample(line)
}

func (v *expValidator) comment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return fmt.Errorf("malformed comment %q", line)
	}
	kind, name := fields[1], fields[2]
	switch kind {
	case "HELP":
		if !metricNameRe.MatchString(name) {
			return fmt.Errorf("HELP for invalid metric name %q", name)
		}
		if v.helped[name] {
			return fmt.Errorf("duplicate HELP for %q", name)
		}
		v.helped[name] = true
	case "TYPE":
		if !metricNameRe.MatchString(name) {
			return fmt.Errorf("TYPE for invalid metric name %q", name)
		}
		if len(fields) != 4 {
			return fmt.Errorf("TYPE line for %q missing a type", name)
		}
		switch MetricType(fields[3]) {
		case TypeCounter, TypeGauge, TypeHistogram:
		default:
			return fmt.Errorf("unknown TYPE %q for %q", fields[3], name)
		}
		// A TYPE arriving after its family's samples is also caught here:
		// samples without a preceding TYPE are rejected outright, so a
		// late TYPE can only be a duplicate.
		if _, dup := v.typed[name]; dup {
			return fmt.Errorf("duplicate TYPE for %q", name)
		}
		v.typed[name] = MetricType(fields[3])
	default:
		// Other comments are legal and ignored.
	}
	return nil
}

func (v *expValidator) sample(line string) error {
	name, rest, err := splitName(line)
	if err != nil {
		return err
	}
	labels := map[string]string{}
	if strings.HasPrefix(rest, "{") {
		if labels, rest, err = parseLabels(rest); err != nil {
			return err
		}
	}
	valStr := strings.TrimSpace(rest)
	// A trailing timestamp and/or `# {...} v` exemplar is legal; the
	// value is the first field.
	var trailer string
	if i := strings.IndexByte(valStr, ' '); i >= 0 {
		trailer = strings.TrimSpace(valStr[i+1:])
		valStr = valStr[:i]
	}
	value, err := parseValue(valStr)
	if err != nil {
		return fmt.Errorf("sample %q: %w", line, err)
	}
	base := histBase(name, v.typed)
	fam := name
	if base != "" {
		fam = base
	}
	if _, ok := v.typed[fam]; !ok {
		return fmt.Errorf("sample for %q without a preceding TYPE", name)
	}
	if trailer != "" {
		if !strings.HasPrefix(trailer, "#") {
			// A timestamp, possibly followed by an exemplar.
			ts := trailer
			if i := strings.IndexByte(trailer, ' '); i >= 0 {
				ts, trailer = trailer[:i], strings.TrimSpace(trailer[i+1:])
			} else {
				trailer = ""
			}
			if _, err := strconv.ParseFloat(ts, 64); err != nil {
				return fmt.Errorf("sample %q: bad timestamp %q", line, ts)
			}
		}
		if trailer != "" {
			if base == "" || !strings.HasSuffix(name, "_bucket") {
				return fmt.Errorf("sample %q: exemplar on a non-bucket sample", line)
			}
			if err := validateExemplar(trailer); err != nil {
				return fmt.Errorf("sample %q: %w", line, err)
			}
		}
	}
	if base != "" {
		v.histSample(base, name, labels, value)
	}
	return nil
}

// validateExemplar checks an exemplar suffix: `# {labels} value`, with
// valid label syntax and a parseable value (an optional exemplar
// timestamp may follow).
func validateExemplar(s string) error {
	s = strings.TrimSpace(strings.TrimPrefix(s, "#"))
	if !strings.HasPrefix(s, "{") {
		return fmt.Errorf("exemplar without labels near %q", s)
	}
	labels, rest, err := parseLabels(s)
	if err != nil {
		return fmt.Errorf("exemplar: %w", err)
	}
	if len(labels) == 0 {
		return fmt.Errorf("exemplar with empty label set")
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("exemplar needs a value (and at most a timestamp), got %q", rest)
	}
	if _, err := parseValue(fields[0]); err != nil {
		return fmt.Errorf("exemplar: %w", err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			return fmt.Errorf("exemplar: bad timestamp %q", fields[1])
		}
	}
	return nil
}

// histBase maps a histogram's _bucket/_sum/_count sample name back to its
// family name, if that family was TYPEd histogram.
func histBase(name string, typed map[string]MetricType) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && typed[base] == TypeHistogram {
			return base
		}
	}
	return ""
}

func (v *expValidator) histSample(base, name string, labels map[string]string, value float64) {
	h := v.hists[base]
	if h == nil {
		h = &histCheck{buckets: map[string][]bucketSample{}, counts: map[string]float64{}, sums: map[string]bool{}}
		v.hists[base] = h
	}
	le := labels["le"]
	delete(labels, "le")
	sig := labelsSig(labels)
	switch {
	case strings.HasSuffix(name, "_bucket"):
		f := math.Inf(+1)
		if le != "+Inf" {
			f, _ = strconv.ParseFloat(le, 64)
		}
		h.buckets[sig] = append(h.buckets[sig], bucketSample{le: f, cum: value})
	case strings.HasSuffix(name, "_count"):
		h.counts[sig] = value
	case strings.HasSuffix(name, "_sum"):
		h.sums[sig] = true
	}
}

func (v *expValidator) finish() error {
	for base, h := range v.hists {
		for _, sig := range sortedSigs(h.buckets) {
			bs := h.buckets[sig]
			last := bs[len(bs)-1]
			if !math.IsInf(last.le, +1) {
				return fmt.Errorf("telemetry: histogram %s{%s}: last bucket le=%v, want +Inf", base, sig, last.le)
			}
			for i := 1; i < len(bs); i++ {
				if bs[i].le <= bs[i-1].le {
					return fmt.Errorf("telemetry: histogram %s{%s}: le not increasing at %v", base, sig, bs[i].le)
				}
				if bs[i].cum < bs[i-1].cum {
					return fmt.Errorf("telemetry: histogram %s{%s}: cumulative count decreases at le=%v", base, sig, bs[i].le)
				}
			}
			count, ok := h.counts[sig]
			if !ok {
				return fmt.Errorf("telemetry: histogram %s{%s}: missing _count", base, sig)
			}
			if count != last.cum {
				return fmt.Errorf("telemetry: histogram %s{%s}: _count %v != +Inf bucket %v", base, sig, count, last.cum)
			}
			if !h.sums[sig] {
				return fmt.Errorf("telemetry: histogram %s{%s}: missing _sum", base, sig)
			}
		}
	}
	for name := range v.typed {
		if !v.helped[name] {
			return fmt.Errorf("telemetry: metric %q has TYPE but no HELP", name)
		}
	}
	for name := range v.helped {
		if _, ok := v.typed[name]; !ok {
			return fmt.Errorf("telemetry: metric %q has HELP but no TYPE", name)
		}
	}
	return nil
}

func sortedSigs(m map[string][]bucketSample) []string {
	sigs := make([]string, 0, len(m))
	for sig := range m {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	return sigs
}

func labelsSig(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + strconv.Quote(labels[k])
	}
	return strings.Join(parts, ",")
}

func splitName(line string) (name, rest string, err error) {
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return "", "", fmt.Errorf("malformed sample %q", line)
	}
	name = line[:i]
	if !metricNameRe.MatchString(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	return name, line[i:], nil
}

func parseLabels(s string) (map[string]string, string, error) {
	labels := map[string]string{}
	s = s[1:] // consume '{'
	for {
		s = strings.TrimLeft(s, " ,")
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return nil, "", fmt.Errorf("malformed labels near %q", s)
		}
		key := s[:eq]
		if !labelNameRe.MatchString(key) {
			return nil, "", fmt.Errorf("invalid label name %q", key)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, "", fmt.Errorf("unquoted label value near %q", s)
		}
		val, rest, err := unquoteLabel(s)
		if err != nil {
			return nil, "", err
		}
		labels[key] = val
		s = rest
	}
}

// unquoteLabel consumes a quoted label value honoring \\, \" and \n
// escapes, returning the value and the remaining input.
func unquoteLabel(s string) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("truncated escape in %q", s)
			}
			i++
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("bad escape \\%c in %q", s[i], s)
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value in %q", s)
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return v, nil
}
