// Package telemetry is the repo's stdlib-only observability layer: the
// instrumentation the ROADMAP's "production-scale system" needs to answer
// latency questions the paper's evaluation asks in aggregate — "what is p99
// deploy latency?" (Fig. 9 is a deployment-latency figure), "where did this
// one slow compile spend its time?" (Fig. 8 is a compile-time breakdown).
//
// It has three parts:
//
//   - Metrics: a Registry of named counters, gauges and fixed-bucket latency
//     histograms (with p50/p90/p99 summaries). Handles are resolved once and
//     then updated with atomic operations, so instrumenting a hot path costs
//     nanoseconds, and scrape-time callbacks (GaugeFunc/CounterFunc) read
//     live state without per-operation bookkeeping.
//
//   - Tracing: a Tracer records lightweight spans (parent/child, per-span
//     attrs) into a bounded in-memory ring of recent traces. A nil *Span is
//     a valid no-op receiver, so call sites need no "is tracing on" guards,
//     and spans propagate through context so parallel workers (the per-block
//     P&R pool) attach their fan-out spans to the right parent.
//
//   - Exposition: WritePrometheus renders the registry in the Prometheus
//     text format (version 0.0.4) and ValidateExposition is a strict parser
//     for it — the golden-file CI test and the obssmoke target both use it,
//     so a malformed metric name or a non-monotone histogram fails the
//     build, not the operator's scrape.
//
// The registry is per-controller; the daemon runs one controller, which
// makes it process-wide in practice while keeping tests isolated.
package telemetry
