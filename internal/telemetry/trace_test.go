package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
)

func TestTraceParentChild(t *testing.T) {
	tr := NewTracer(8)
	root := tr.Start("deploy", String("app", "lenet-M"))
	id := root.TraceID()
	a := root.Child("allocate")
	a.End()
	b := root.Child("relocate", Int("blocks", 3))
	b.SetAttr("board", "1")
	b.End()
	root.End()

	td, ok := tr.Get(id)
	if !ok {
		t.Fatalf("trace %q not retrievable after root End", id)
	}
	if td.Name != "deploy" || td.Attrs["app"] != "lenet-M" {
		t.Fatalf("trace summary = %+v", td.TraceSummary)
	}
	if len(td.AllSpans) != 3 {
		t.Fatalf("got %d spans, want 3", len(td.AllSpans))
	}
	byName := map[string]SpanData{}
	for _, sp := range td.AllSpans {
		byName[sp.Name] = sp
	}
	rootSpan := byName["deploy"]
	if rootSpan.Parent != 0 {
		t.Fatalf("root parent = %d, want 0", rootSpan.Parent)
	}
	for _, name := range []string{"allocate", "relocate"} {
		if byName[name].Parent != rootSpan.ID {
			t.Fatalf("%s parent = %d, want root %d", name, byName[name].Parent, rootSpan.ID)
		}
	}
	if byName["relocate"].Attrs["blocks"] != "3" || byName["relocate"].Attrs["board"] != "1" {
		t.Fatalf("relocate attrs = %v", byName["relocate"].Attrs)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3)
	var ids []string
	for i := 0; i < 5; i++ {
		sp := tr.Start("op", Int("i", i))
		ids = append(ids, sp.TraceID())
		sp.End()
	}
	for _, id := range ids[:2] {
		if _, ok := tr.Get(id); ok {
			t.Fatalf("evicted trace %q still retrievable", id)
		}
	}
	for _, id := range ids[2:] {
		if _, ok := tr.Get(id); !ok {
			t.Fatalf("recent trace %q missing", id)
		}
	}
	recent := tr.Recent(0)
	if len(recent) != 3 {
		t.Fatalf("Recent(0) = %d traces, want 3", len(recent))
	}
	// Newest first.
	if recent[0].ID != ids[4] || recent[2].ID != ids[2] {
		t.Fatalf("Recent order = %q, want newest first %q..%q", []string{recent[0].ID, recent[1].ID, recent[2].ID}, ids[4], ids[2])
	}
	if got := tr.Recent(2); len(got) != 2 || got[0].ID != ids[4] {
		t.Fatalf("Recent(2) = %+v", got)
	}
}

func TestTracerEvictedCounter(t *testing.T) {
	tr := NewTracer(1)
	if got := tr.Evicted(); got != 0 {
		t.Fatalf("fresh tracer Evicted = %d, want 0", got)
	}
	first := tr.Start("op")
	first.End()
	// Filling the ring is not eviction.
	if got := tr.Evicted(); got != 0 {
		t.Fatalf("Evicted after fill = %d, want 0", got)
	}
	for i := 1; i <= 3; i++ {
		sp := tr.Start("op", Int("i", i))
		sp.End()
		if got := tr.Evicted(); got != uint64(i) {
			t.Fatalf("Evicted after %d overwrites = %d", i, got)
		}
	}
	var nilTr *Tracer
	if got := nilTr.Evicted(); got != 0 {
		t.Fatalf("nil tracer Evicted = %d, want 0", got)
	}
}

func TestMergeTracesPartialDetection(t *testing.T) {
	tr := NewTracer(8)
	root := tr.Start("submit")
	sc := root.Context()
	root.End()
	seg := tr.StartRemote("deploy.async", sc)
	child := seg.Child("allocate")
	child.End()
	seg.End()

	// Both segments present: the async root's parent resolves, no orphans.
	full, ok := tr.Get(root.TraceID())
	if !ok {
		t.Fatalf("merged trace not retrievable")
	}
	if full.Partial || full.OrphanSpans != 0 {
		t.Fatalf("complete merge marked partial: partial=%v orphans=%d", full.Partial, full.OrphanSpans)
	}
	if strings.Contains(full.Tree(), "partial") {
		t.Fatalf("complete tree labeled partial:\n%s", full.Tree())
	}

	// Drop the rooted segment — as if the ring evicted it. The async
	// segment's root now orphans and the merge has no Parent==0 span.
	var asyncSeg TraceData
	tr.mu.Lock()
	for _, td := range tr.ring {
		for _, sp := range td.AllSpans {
			if sp.Name == "deploy.async" {
				asyncSeg = td
			}
		}
	}
	tr.mu.Unlock()
	partial := MergeTraces([]TraceData{asyncSeg})
	if !partial.Partial || partial.OrphanSpans != 1 {
		t.Fatalf("evicted-parent merge: partial=%v orphans=%d, want true/1", partial.Partial, partial.OrphanSpans)
	}
	tree := partial.Tree()
	if !strings.Contains(tree, "partial: 1 orphaned span(s)") {
		t.Fatalf("partial tree not labeled:\n%s", tree)
	}
	// The orphaned segment still renders — fallback-rooted, not dropped.
	if !strings.Contains(tree, "deploy.async") || !strings.Contains(tree, "allocate") {
		t.Fatalf("partial tree missing spans:\n%s", tree)
	}
}

func TestTracerRecentBeforeWrap(t *testing.T) {
	tr := NewTracer(8)
	a := tr.Start("one")
	a.End()
	b := tr.Start("two")
	b.End()
	recent := tr.Recent(10)
	if len(recent) != 2 || recent[0].Name != "two" || recent[1].Name != "one" {
		t.Fatalf("Recent = %+v, want [two one]", recent)
	}
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("noop")
	if sp != nil {
		t.Fatalf("nil tracer returned a live span")
	}
	// Every span method must be callable on nil.
	sp.SetAttr("k", "v")
	child := sp.Child("child")
	if child != nil {
		t.Fatalf("nil span returned a live child")
	}
	child.End()
	sp.End()
	if got := sp.TraceID(); got != "" {
		t.Fatalf("nil span TraceID = %q, want empty", got)
	}
	if got := tr.Recent(10); got != nil {
		t.Fatalf("nil tracer Recent = %v, want nil", got)
	}
}

func TestSpanContextPropagation(t *testing.T) {
	tr := NewTracer(4)
	root := tr.Start("compile")
	ctx := ContextWithSpan(context.Background(), root)
	child := StartChild(ctx, "pnr.block", Int("block", 0))
	child.End()
	root.End()
	td, _ := tr.Get(root.TraceID())
	if len(td.AllSpans) != 2 {
		t.Fatalf("got %d spans, want 2", len(td.AllSpans))
	}
	if StartChild(context.Background(), "orphan") != nil {
		t.Fatalf("StartChild without a context span returned a live span")
	}
}

func TestConcurrentChildSpans(t *testing.T) {
	tr := NewTracer(4)
	root := tr.Start("compile")
	var wg sync.WaitGroup
	const workers = 16
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := root.Child("pnr.block", Int("block", i))
			sp.End()
		}(w)
	}
	wg.Wait()
	root.End()
	td, _ := tr.Get(root.TraceID())
	if len(td.AllSpans) != workers+1 {
		t.Fatalf("got %d spans, want %d", len(td.AllSpans), workers+1)
	}
	seen := map[int64]bool{}
	for _, sp := range td.AllSpans {
		if seen[sp.ID] {
			t.Fatalf("duplicate span ID %d under concurrency", sp.ID)
		}
		seen[sp.ID] = true
	}
}

func TestTraceTreeRendering(t *testing.T) {
	tr := NewTracer(4)
	root := tr.Start("compile", String("app", "lenet-M"))
	s1 := root.Child("synthesis")
	s1.End()
	s2 := root.Child("local_pnr")
	blk := s2.Child("pnr.block", Int("block", 0))
	blk.End()
	s2.End()
	root.End()
	td, _ := tr.Get(root.TraceID())
	tree := td.Tree()
	for _, want := range []string{"compile", "synthesis", "local_pnr", "pnr.block", "block=0", "app=lenet-M"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}
	// pnr.block nests one level deeper than local_pnr.
	lines := strings.Split(tree, "\n")
	indent := func(name string) int {
		for _, l := range lines {
			if strings.Contains(l, name) {
				return len(l) - len(strings.TrimLeft(l, " "))
			}
		}
		t.Fatalf("tree missing line for %q:\n%s", name, tree)
		return 0
	}
	if indent("pnr.block") <= indent("local_pnr") {
		t.Fatalf("pnr.block not nested under local_pnr:\n%s", tree)
	}
}
