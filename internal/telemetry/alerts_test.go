package telemetry

import (
	"testing"
	"time"
)

func TestAlertRuleForDuration(t *testing.T) {
	val := 0.0
	var fired, resolved []AlertTransition
	eng := NewAlertEngine(func(tr AlertTransition) {
		if tr.To == AlertFiring {
			fired = append(fired, tr)
		} else {
			resolved = append(resolved, tr)
		}
	})
	if err := eng.AddRule(AlertRule{
		Name: "frag_high", Source: func() float64 { return val },
		Op: OpGreater, Threshold: 0.5, For: 30 * time.Second,
	}); err != nil {
		t.Fatalf("AddRule: %v", err)
	}

	t0 := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	if tr := eng.Eval(t0); len(tr) != 0 {
		t.Fatalf("inactive eval produced transitions: %v", tr)
	}

	// Breach starts: pending, no transition until For elapses.
	val = 0.9
	if tr := eng.Eval(t0.Add(1 * time.Second)); len(tr) != 0 {
		t.Fatalf("pending should not fire yet: %v", tr)
	}
	if st := eng.Status()[0]; st.State != AlertPending || st.Since == nil {
		t.Fatalf("status = %+v, want pending with Since", st)
	}
	if tr := eng.Eval(t0.Add(20 * time.Second)); len(tr) != 0 {
		t.Fatalf("still inside For window: %v", tr)
	}
	tr := eng.Eval(t0.Add(32 * time.Second))
	if len(tr) != 1 || tr[0].To != AlertFiring || tr[0].Rule != "frag_high" {
		t.Fatalf("want one firing transition, got %v", tr)
	}
	if len(fired) != 1 {
		t.Fatalf("callback fired %d times, want 1", len(fired))
	}
	if got := eng.StateValueOf("frag_high"); got != 2 {
		t.Fatalf("StateValueOf = %v, want 2", got)
	}
	if eng.Firing() != 1 {
		t.Fatalf("Firing() = %d, want 1", eng.Firing())
	}

	// Stays firing without re-announcing.
	if tr := eng.Eval(t0.Add(40 * time.Second)); len(tr) != 0 {
		t.Fatalf("firing rule re-announced: %v", tr)
	}

	// Recovery resolves with a transition.
	val = 0.1
	tr = eng.Eval(t0.Add(50 * time.Second))
	if len(tr) != 1 || tr[0].To != AlertInactive {
		t.Fatalf("want one resolved transition, got %v", tr)
	}
	if len(resolved) != 1 {
		t.Fatalf("callback resolved %d times, want 1", len(resolved))
	}
	if st := eng.Status()[0]; st.State != AlertInactive || st.Since != nil || st.Fired != 1 {
		t.Fatalf("status after resolve = %+v", st)
	}
}

func TestAlertPendingRecoversSilently(t *testing.T) {
	val := 1.0
	var transitions int
	eng := NewAlertEngine(func(AlertTransition) { transitions++ })
	if err := eng.AddRule(AlertRule{
		Name: "r", Source: func() float64 { return val },
		Op: OpGreater, Threshold: 0.5, For: time.Minute,
	}); err != nil {
		t.Fatalf("AddRule: %v", err)
	}
	t0 := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	eng.Eval(t0) // pending
	val = 0.0
	eng.Eval(t0.Add(10 * time.Second)) // back to inactive before firing
	if transitions != 0 {
		t.Fatalf("pending → inactive must be silent, got %d transitions", transitions)
	}
	// A fresh breach restarts the For clock.
	val = 1.0
	eng.Eval(t0.Add(20 * time.Second))
	if tr := eng.Eval(t0.Add(70 * time.Second)); len(tr) != 0 {
		t.Fatalf("For clock did not restart: %v", tr)
	}
	if tr := eng.Eval(t0.Add(81 * time.Second)); len(tr) != 1 {
		t.Fatalf("want firing after full For from restart, got %v", tr)
	}
}

func TestAlertZeroForFiresImmediately(t *testing.T) {
	eng := NewAlertEngine(nil)
	if err := eng.AddRule(AlertRule{
		Name: "lt", Source: func() float64 { return 0.2 }, Op: OpLess, Threshold: 0.5,
	}); err != nil {
		t.Fatalf("AddRule: %v", err)
	}
	tr := eng.Eval(time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC))
	if len(tr) != 1 || tr[0].To != AlertFiring {
		t.Fatalf("zero-For rule should fire on first breach, got %v", tr)
	}
}

func TestAlertEngineValidation(t *testing.T) {
	eng := NewAlertEngine(nil)
	if err := eng.AddRule(AlertRule{Name: "", Source: func() float64 { return 0 }, Op: OpGreater}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := eng.AddRule(AlertRule{Name: "x", Op: OpGreater}); err == nil {
		t.Fatal("nil source accepted")
	}
	if err := eng.AddRule(AlertRule{Name: "x", Source: func() float64 { return 0 }, Op: "!="}); err == nil {
		t.Fatal("bad op accepted")
	}
	if err := eng.AddRule(AlertRule{Name: "x", Source: func() float64 { return 0 }, Op: OpGreater}); err != nil {
		t.Fatalf("valid rule rejected: %v", err)
	}
	if err := eng.AddRule(AlertRule{Name: "x", Source: func() float64 { return 0 }, Op: OpLess}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	// Status is sorted by rule name.
	_ = eng.AddRule(AlertRule{Name: "a", Source: func() float64 { return 0 }, Op: OpGreater})
	st := eng.Status()
	if len(st) != 2 || st[0].Rule != "a" || st[1].Rule != "x" {
		t.Fatalf("Status not sorted: %+v", st)
	}
}
