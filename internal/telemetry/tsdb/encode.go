// Chunk encoding: each series stores its samples in a short ring of
// append-only chunks. Within a chunk, timestamps are delta-encoded
// (zigzag varint of the millisecond delta from the previous sample — two
// bytes for any regular scrape cadence under ~16 s) and values are
// XOR-encoded (uvarint of the current value's float bits XORed with the
// previous sample's). A counter that did not move between scrapes costs
// one byte for the timestamp delta and one for the zero XOR; a gauge
// whose mantissa wiggles costs a few more. Appending touches only the
// active chunk's tail — O(1), no re-encoding.
package tsdb

import (
	"encoding/binary"
	"math"
)

// chunk is one encoded run of consecutive samples of a single series.
type chunk struct {
	// t0 is the first sample's timestamp (unix milliseconds); minT/maxT
	// bound the chunk for range pruning (minT == t0, maxT == the last
	// appended timestamp).
	t0, maxT int64
	n        int
	buf      []byte

	// Encoder state: the previous sample, against which the next append
	// is delta/XOR-coded.
	lastT int64
	lastV uint64
}

// append encodes one sample onto the chunk tail. Timestamps may repeat or
// even regress (the zigzag delta is signed); the decoder reproduces them
// exactly either way.
func (c *chunk) append(t int64, v float64) {
	bits := math.Float64bits(v)
	if c.n == 0 {
		c.t0, c.lastT, c.lastV = t, t, 0
	}
	c.buf = binary.AppendUvarint(c.buf, zigzag(t-c.lastT))
	c.buf = binary.AppendUvarint(c.buf, bits^c.lastV)
	c.lastT, c.lastV = t, bits
	if t > c.maxT {
		c.maxT = t
	}
	c.n++
}

// iter decodes the chunk in append order, calling f per sample until f
// returns false. A corrupt tail (impossible unless memory was scribbled
// on) terminates the walk early rather than panicking.
func (c *chunk) iter(f func(t int64, v float64) bool) {
	t, bits := c.t0, uint64(0)
	buf := c.buf
	for i := 0; i < c.n; i++ {
		dz, n := binary.Uvarint(buf)
		if n <= 0 {
			return
		}
		buf = buf[n:]
		x, n := binary.Uvarint(buf)
		if n <= 0 {
			return
		}
		buf = buf[n:]
		if i == 0 {
			t = c.t0
		} else {
			t += unzigzag(dz)
		}
		bits ^= x
		if !f(t, math.Float64frombits(bits)) {
			return
		}
	}
}

// zigzag maps a signed delta onto the unsigned varint space so small
// negative deltas stay small on the wire.
func zigzag(d int64) uint64 { return uint64((d << 1) ^ (d >> 63)) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
