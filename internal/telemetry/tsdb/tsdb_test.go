package tsdb

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"vital/internal/telemetry"
)

// ts builds the test clock: a fixed epoch plus a second offset, so every
// fixture below is hand-computable in whole seconds.
var epoch = time.Unix(1_700_000_000, 0)

func ts(sec float64) time.Time { return epoch.Add(time.Duration(sec * float64(time.Second))) }

func msAt(sec float64) int64 { return ts(sec).UnixMilli() }

func TestChunkRoundTrip(t *testing.T) {
	c := &chunk{}
	type sample struct {
		t int64
		v float64
	}
	in := []sample{
		{1000, 0},
		{2000, 1.5},
		{2000, 1.5},      // repeated timestamp
		{1500, -3.25},    // regressing timestamp (signed delta)
		{90000, 1e300},   // large jump, extreme value
		{90001, -1e-300}, // tiny value
		{90002, math.Inf(1)},
		{90003, 42},
	}
	for _, s := range in {
		c.append(s.t, s.v)
	}
	var out []sample
	c.iter(func(tt int64, v float64) bool {
		out = append(out, sample{tt, v})
		return true
	})
	if len(out) != len(in) {
		t.Fatalf("decoded %d samples, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("sample %d: got %+v want %+v", i, out[i], in[i])
		}
	}
	if c.t0 != 1000 || c.maxT != 90003 {
		t.Fatalf("bounds t0=%d maxT=%d", c.t0, c.maxT)
	}
}

func TestChunkConstantValueIsCheap(t *testing.T) {
	c := &chunk{}
	c.append(1000, 5)
	before := len(c.buf)
	for i := 1; i < 100; i++ {
		c.append(1000+int64(i)*1000, 5)
	}
	// A constant counter at a 1 s cadence costs 3 bytes per sample: two
	// for the zigzagged 1000 ms delta, one for the zero XOR.
	if got := len(c.buf) - before; got != 3*99 {
		t.Fatalf("99 constant samples cost %d bytes, want %d", got, 3*99)
	}
}

func TestZigzag(t *testing.T) {
	for _, d := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40), math.MaxInt64, math.MinInt64} {
		if got := unzigzag(zigzag(d)); got != d {
			t.Fatalf("zigzag round trip %d -> %d", d, got)
		}
	}
}

func TestAppendAndRawQuery(t *testing.T) {
	db := New(Options{})
	lbl := []telemetry.Label{telemetry.L("tenant", "a")}
	for i := 0; i < 5; i++ {
		db.Append("vital_used_blocks", lbl, ts(float64(i)), float64(i*10))
	}
	resp, err := db.Query(Query{Name: "vital_used_blocks", Func: FuncRaw, Start: ts(0), End: ts(10)})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || len(resp.Results[0].Points) != 5 {
		t.Fatalf("raw query: %+v", resp.Results)
	}
	for i, p := range resp.Results[0].Points {
		if p.T != msAt(float64(i)) || p.V != float64(i*10) {
			t.Fatalf("point %d: %+v", i, p)
		}
	}
	if resp.Results[0].Labels["tenant"] != "a" {
		t.Fatalf("labels: %+v", resp.Results[0].Labels)
	}
}

func TestAppendDropsOutOfOrder(t *testing.T) {
	db := New(Options{})
	db.Append("x", nil, ts(10), 1)
	db.Append("x", nil, ts(5), 2) // regressed clock: dropped
	db.Append("x", nil, ts(11), 3)
	resp, _ := db.Query(Query{Name: "x", Func: FuncRaw, Start: ts(0), End: ts(20)})
	if n := len(resp.Results[0].Points); n != 2 {
		t.Fatalf("got %d points, want 2 (out-of-order dropped)", n)
	}
}

func TestRetentionEvictsChunks(t *testing.T) {
	db := New(Options{Retention: 10 * time.Second, ChunkSamples: 2, MaxChunks: 100})
	for i := 0; i < 10; i++ {
		db.Append("x", nil, ts(float64(i*5)), float64(i))
	}
	// 45 s of samples with 10 s retention: only chunks whose newest sample
	// is within 10 s of t=45 survive (plus the active chunk).
	resp, _ := db.Query(Query{Name: "x", Func: FuncRaw, Start: ts(0), End: ts(100)})
	pts := resp.Results[0].Points
	if pts[0].T < msAt(30) {
		t.Fatalf("oldest surviving point %d predates retention horizon", pts[0].T)
	}
	db.mu.Lock()
	ev := db.evictions
	db.mu.Unlock()
	if ev == 0 {
		t.Fatal("no evictions recorded")
	}
}

func TestMaxChunksCap(t *testing.T) {
	db := New(Options{Retention: time.Hour, ChunkSamples: 1, MaxChunks: 3})
	for i := 0; i < 10; i++ {
		db.Append("x", nil, ts(float64(i)), float64(i))
	}
	db.mu.Lock()
	n := len(db.series["x"].chunks)
	db.mu.Unlock()
	if n > 3 {
		t.Fatalf("series holds %d chunks, cap is 3", n)
	}
}

// TestRateHandComputed pins the acceptance fixture: a counter scraped
// every second, queried as rate over aligned 5 s steps.
func TestRateHandComputed(t *testing.T) {
	db := New(Options{})
	// t=1..10 s, value 5·(t−1): a steady 5/s counter.
	for i := 1; i <= 10; i++ {
		db.Append("vital_gateway_requests_total", nil, ts(float64(i)), float64(5*(i-1)))
	}
	resp, err := db.Query(Query{
		Name: "vital_gateway_requests_total", Func: FuncRate,
		Start: ts(0), End: ts(10), Step: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 {
		t.Fatalf("results: %+v", resp.Results)
	}
	pts := resp.Results[0].Points
	// Step t=5 s: window (0,5] holds t=1..5 (values 0..20): increase 20
	// over a 4 s observed span → 5/s. Step t=10 s: window (5,10] holds
	// t=6..10 (values 25..45): again 5/s.
	want := []Point{{msAt(5), 5}, {msAt(10), 5}}
	if len(pts) != len(want) {
		t.Fatalf("points %+v, want %+v", pts, want)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("point %d: %+v want %+v", i, pts[i], want[i])
		}
	}
}

func TestRateCounterReset(t *testing.T) {
	db := New(Options{})
	vals := []float64{0, 10, 20, 5, 15} // restart between t=3 and t=4
	for i, v := range vals {
		db.Append("c", nil, ts(float64(i+1)), v)
	}
	resp, err := db.Query(Query{Name: "c", Func: FuncIncrease, Start: ts(5), End: ts(5), Step: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Window (0,5]: deltas +10, +10, reset→+5, +10 = 35.
	if got := resp.Results[0].Points[0].V; got != 35 {
		t.Fatalf("increase with reset = %v, want 35", got)
	}
	resp, _ = db.Query(Query{Name: "c", Func: FuncRate, Start: ts(5), End: ts(5), Step: 5 * time.Second})
	// 35 over the 4 s observed span.
	if got := resp.Results[0].Points[0].V; got != 8.75 {
		t.Fatalf("rate with reset = %v, want 8.75", got)
	}
}

func TestAvgMaxLastHandComputed(t *testing.T) {
	db := New(Options{})
	vals := []float64{2, 4, 6, 100, 8}
	for i, v := range vals {
		db.Append("g", nil, ts(float64(i+1)), v)
	}
	q := Query{Name: "g", Start: ts(5), End: ts(5), Step: 5 * time.Second}
	q.Func = FuncAvg
	resp, _ := db.Query(q)
	if got := resp.Results[0].Points[0].V; got != 24 { // (2+4+6+100+8)/5
		t.Fatalf("avg = %v, want 24", got)
	}
	q.Func = FuncMax
	resp, _ = db.Query(q)
	if got := resp.Results[0].Points[0].V; got != 100 {
		t.Fatalf("max = %v, want 100", got)
	}
	q.Func = FuncLast
	resp, _ = db.Query(q)
	if got := resp.Results[0].Points[0].V; got != 8 {
		t.Fatalf("last = %v, want 8", got)
	}
}

func TestAlignedSteps(t *testing.T) {
	db := New(Options{})
	for i := 0; i <= 12; i++ {
		db.Append("g", nil, ts(float64(i)), float64(i))
	}
	// start=3 s with step=2 s: evaluation grid is 4,6,8,10 s regardless of
	// the ragged start.
	resp, err := db.Query(Query{Name: "g", Func: FuncLast, Start: ts(3), End: ts(10), Step: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	pts := resp.Results[0].Points
	wantT := []int64{msAt(4), msAt(6), msAt(8), msAt(10)}
	if len(pts) != len(wantT) {
		t.Fatalf("points %+v", pts)
	}
	for i, p := range pts {
		if p.T != wantT[i] || p.V != float64(4+2*i) {
			t.Fatalf("point %d: %+v", i, p)
		}
	}
}

func TestGapsAreOmitted(t *testing.T) {
	db := New(Options{})
	db.Append("g", nil, ts(1), 1)
	db.Append("g", nil, ts(20), 2)
	resp, _ := db.Query(Query{Name: "g", Func: FuncLast, Start: ts(0), End: ts(20), Step: 5 * time.Second})
	pts := resp.Results[0].Points
	// Windows (0,5] and (15,20] have samples; (5,10] and (10,15] are gaps.
	if len(pts) != 2 || pts[0].T != msAt(5) || pts[1].T != msAt(20) {
		t.Fatalf("points %+v", pts)
	}
}

// TestQuantileHandComputed pins quantile-over-histogram against a
// hand-built bucket ladder.
func TestQuantileHandComputed(t *testing.T) {
	db := New(Options{})
	le := func(v string) []telemetry.Label { return []telemetry.Label{telemetry.L("le", v)} }
	// Baseline at t=1 s, all zero; by t=9 s: 10 obs ≤0.1, 30 ≤0.5, 40 total.
	for _, b := range []struct {
		le string
		v  float64
	}{{"0.1", 0}, {"0.5", 0}, {"+Inf", 0}} {
		db.Append("vital_http_request_seconds_bucket", le(b.le), ts(1), b.v)
	}
	for _, b := range []struct {
		le string
		v  float64
	}{{"0.1", 10}, {"0.5", 30}, {"+Inf", 40}} {
		db.Append("vital_http_request_seconds_bucket", le(b.le), ts(9), b.v)
	}
	q := Query{
		Name: "vital_http_request_seconds", Func: FuncQuantile, Q: 0.5,
		Start: ts(10), End: ts(10), Step: 10 * time.Second,
	}
	resp, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || len(resp.Results[0].Points) != 1 {
		t.Fatalf("results %+v", resp.Results)
	}
	// Window increase: 10 in (−∞,0.1], 20 in (0.1,0.5], 10 in +Inf.
	// rank = 0.5·40 = 20 → cum hits 30 at le=0.5: interpolate
	// 0.1 + 0.4·(20−10)/20 = 0.3.
	if got := resp.Results[0].Points[0].V; math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("p50 = %v, want 0.3", got)
	}
	// p99: rank 39.6 lands in +Inf → clamp to the highest finite bound.
	q.Q = 0.99
	resp, _ = db.Query(q)
	if got := resp.Results[0].Points[0].V; got != 0.5 {
		t.Fatalf("p99 = %v, want 0.5 (highest finite bound)", got)
	}
}

// TestQuantileEdgeCases pins the degenerate histogram shapes: no
// observations, a single-bucket ladder, all mass beyond every finite
// bound, and a rank landing exactly on a bucket boundary.
func TestQuantileEdgeCases(t *testing.T) {
	le := func(v string) []telemetry.Label { return []telemetry.Label{telemetry.L("le", v)} }
	appendLadder := func(db *DB, at time.Time, vals map[string]float64) {
		for l, v := range vals {
			db.Append("vital_edge_seconds_bucket", le(l), at, v)
		}
	}
	q := Query{
		Name: "vital_edge_seconds", Func: FuncQuantile, Q: 0.5,
		Start: ts(10), End: ts(10), Step: 10 * time.Second,
	}

	t.Run("empty", func(t *testing.T) {
		// Buckets scraped twice but flat at zero: no observations landed
		// in the window, so the step is a gap, not a phantom 0.
		db := New(Options{})
		appendLadder(db, ts(1), map[string]float64{"0.1": 0, "+Inf": 0})
		appendLadder(db, ts(9), map[string]float64{"0.1": 0, "+Inf": 0})
		resp, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Results) != 0 {
			t.Fatalf("empty histogram produced results: %+v", resp.Results)
		}
	})

	t.Run("single-sample-window", func(t *testing.T) {
		// One scrape only: no increase is computable, so no point.
		db := New(Options{})
		appendLadder(db, ts(9), map[string]float64{"0.1": 5, "+Inf": 5})
		resp, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Results) != 0 {
			t.Fatalf("single-sample window produced results: %+v", resp.Results)
		}
	})

	t.Run("single-finite-bucket", func(t *testing.T) {
		// Ladder {0.2, +Inf}, all 10 obs ≤0.2: every quantile interpolates
		// inside (0, 0.2] — p50 = 0.2·(5/10) = 0.1.
		db := New(Options{})
		appendLadder(db, ts(1), map[string]float64{"0.2": 0, "+Inf": 0})
		appendLadder(db, ts(9), map[string]float64{"0.2": 10, "+Inf": 10})
		resp, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Results) != 1 || len(resp.Results[0].Points) != 1 {
			t.Fatalf("results %+v", resp.Results)
		}
		if got := resp.Results[0].Points[0].V; math.Abs(got-0.1) > 1e-12 {
			t.Fatalf("p50 = %v, want 0.1", got)
		}
	})

	t.Run("all-mass-in-inf", func(t *testing.T) {
		// Every observation beyond the last finite bound: the estimate
		// clamps to that bound at any quantile.
		db := New(Options{})
		appendLadder(db, ts(1), map[string]float64{"0.1": 0, "0.5": 0, "+Inf": 0})
		appendLadder(db, ts(9), map[string]float64{"0.1": 0, "0.5": 0, "+Inf": 20})
		resp, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Results) != 1 || len(resp.Results[0].Points) != 1 {
			t.Fatalf("results %+v", resp.Results)
		}
		if got := resp.Results[0].Points[0].V; got != 0.5 {
			t.Fatalf("p50 = %v, want clamp to 0.5", got)
		}
	})

	t.Run("exact-boundary", func(t *testing.T) {
		// rank = 0.5·20 = 10 = cum at le=0.1 exactly: interpolation reaches
		// the bucket's upper bound, no spill into the next bucket.
		db := New(Options{})
		appendLadder(db, ts(1), map[string]float64{"0.1": 0, "0.5": 0, "+Inf": 0})
		appendLadder(db, ts(9), map[string]float64{"0.1": 10, "0.5": 20, "+Inf": 20})
		resp, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.Results[0].Points[0].V; math.Abs(got-0.1) > 1e-12 {
			t.Fatalf("p50 = %v, want exactly the 0.1 boundary", got)
		}
	})
}

// TestQuantileFromScrapedRegistry walks the full path the daemons use:
// observe a real histogram, scrape twice, and answer
// quantile(0.99, vital_http_request_seconds) from the stored buckets.
func TestQuantileFromScrapedRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("vital_http_request_seconds", "test", []float64{0.01, 0.1, 1},
		telemetry.L("route", "deploy"))
	db := New(Options{})
	db.Scrape(reg, ts(1))
	for i := 0; i < 98; i++ {
		h.Observe(0.005) // 98 fast requests
	}
	h.Observe(0.05) // 2 slower ones
	h.Observe(0.5)
	db.Scrape(reg, ts(9))
	resp, err := db.Query(Query{
		Name: "vital_http_request_seconds", Func: FuncQuantile, Q: 0.99,
		Start: ts(10), End: ts(10), Step: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 {
		t.Fatalf("results %+v", resp.Results)
	}
	if resp.Results[0].Labels["route"] != "deploy" {
		t.Fatalf("labels %+v", resp.Results[0].Labels)
	}
	// Window: 100 observations; cum = 98 (≤0.01), 99 (≤0.1), 100 (≤1).
	// rank = 99 → exactly the ≤0.1 bucket's cumulative count: interpolate
	// 0.01 + (0.1−0.01)·(99−98)/1 = 0.1.
	if got := resp.Results[0].Points[0].V; math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("p99 = %v, want 0.1", got)
	}
}

func TestScrapeExtraLabelsAndSelfMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("vital_requests_total", "test").Add(7)
	db := New(Options{})
	db.Register(reg)
	db.Scrape(reg, ts(1), telemetry.L("tier", "backend"))
	db.Scrape(reg, ts(2), telemetry.L("tier", "backend"))
	resp, _ := db.Query(Query{
		Name: "vital_requests_total", Matchers: map[string]string{"tier": "backend"},
		Func: FuncRaw, Start: ts(0), End: ts(10),
	})
	if len(resp.Results) != 1 || resp.Results[0].Labels["tier"] != "backend" {
		t.Fatalf("tier-labeled series missing: %+v", resp.Results)
	}
	// The DB samples its own vital_tsdb_* families.
	names := db.Names()
	wantSelf := map[string]bool{
		"vital_tsdb_samples_total": false, "vital_tsdb_evicted_chunks_total": false,
		"vital_tsdb_series": false, "vital_tsdb_chunk_bytes": false,
	}
	for _, n := range names {
		if _, ok := wantSelf[n]; ok {
			wantSelf[n] = true
		}
	}
	for n, seen := range wantSelf {
		if !seen {
			t.Fatalf("self-series %s not scraped (names: %v)", n, names)
		}
	}
	// Self-observation is monotone: samples_total at t=2 ≥ at t=1.
	resp, _ = db.Query(Query{Name: "vital_tsdb_samples_total", Matchers: map[string]string{"tier": "backend"},
		Func: FuncRaw, Start: ts(0), End: ts(10)})
	pts := resp.Results[0].Points
	if len(pts) != 2 || pts[1].V < pts[0].V {
		t.Fatalf("samples_total not monotone: %+v", pts)
	}
}

func TestPointJSONRoundTrip(t *testing.T) {
	in := Point{T: 1700000000123, V: 0.25}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "[1700000000123,0.25]" {
		t.Fatalf("marshal: %s", b)
	}
	var out Point
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v", out)
	}
	var resp Response
	blob := `{"series":"x","func":"rate","start_ms":0,"end_ms":10,"step_ms":5,` +
		`"results":[{"labels":{"tier":"backend"},"points":[[1,2],[3,4.5]]}]}`
	if err := json.Unmarshal([]byte(blob), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Points[1].V != 4.5 {
		t.Fatalf("response decode: %+v", resp)
	}
}

func TestParseSelector(t *testing.T) {
	name, m, err := ParseSelector(`vital_used_blocks{tenant="a",board="b0"}`)
	if err != nil || name != "vital_used_blocks" || m["tenant"] != "a" || m["board"] != "b0" {
		t.Fatalf("got %q %v %v", name, m, err)
	}
	name, m, err = ParseSelector("plain_name")
	if err != nil || name != "plain_name" || m != nil {
		t.Fatalf("got %q %v %v", name, m, err)
	}
	for _, bad := range []string{"", `{tenant="a"}`, `x{tenant=a}`, `x{tenant="a"`, `x{="v"}`} {
		if _, _, err := ParseSelector(bad); err == nil {
			t.Fatalf("selector %q should fail", bad)
		}
	}
}

func TestQueryValidate(t *testing.T) {
	base := Query{Name: "x", Func: FuncRate, Start: ts(0), End: ts(10), Step: time.Second}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := base
	bad.Func = "bogus"
	if bad.Validate() == nil {
		t.Fatal("bogus func accepted")
	}
	bad = base
	bad.Step = 0
	if bad.Validate() == nil {
		t.Fatal("zero step accepted")
	}
	bad = base
	bad.Func = FuncQuantile
	if bad.Validate() == nil {
		t.Fatal("quantile without q accepted")
	}
	bad = base
	bad.End, bad.Start = base.Start, base.End
	if bad.Validate() == nil {
		t.Fatal("end<start accepted")
	}
	raw := Query{Name: "x", Func: FuncRaw, Start: ts(0), End: ts(10)}
	if err := raw.Validate(); err != nil {
		t.Fatalf("raw without step should be fine: %v", err)
	}
}

func TestServeQuery(t *testing.T) {
	db := New(Options{})
	for i := 1; i <= 10; i++ {
		db.Append("vital_queue_depth", nil, ts(float64(i)), float64(i%3))
	}
	// Discovery listing.
	rec := httptest.NewRecorder()
	db.ServeQuery(rec, httptest.NewRequest("GET", "/query", nil))
	var names NamesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &names); err != nil || len(names.Names) != 1 {
		t.Fatalf("names: %s (%v)", rec.Body.String(), err)
	}
	// Range query over an explicit window.
	url := "/query?series=vital_queue_depth&func=max&start=" +
		ts(0).Format(time.RFC3339) + "&end=" + ts(10).Format(time.RFC3339) + "&step=5s"
	rec = httptest.NewRecorder()
	db.ServeQuery(rec, httptest.NewRequest("GET", url, nil))
	if rec.Code != 200 {
		t.Fatalf("code %d: %s", rec.Code, rec.Body.String())
	}
	var resp Response
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || len(resp.Results[0].Points) != 2 {
		t.Fatalf("resp %+v", resp)
	}
	if resp.Results[0].Points[0].V != 2 { // max of 1,2,0,1,2
		t.Fatalf("max point %+v", resp.Results[0].Points[0])
	}
	// Bad input is a 400, not a panic.
	rec = httptest.NewRecorder()
	db.ServeQuery(rec, httptest.NewRequest("GET", "/query?series=x&func=bogus", nil))
	if rec.Code != 400 {
		t.Fatalf("bogus func: code %d", rec.Code)
	}
}

func TestAddLabelAndMerge(t *testing.T) {
	a := &Response{Results: []Result{{Points: []Point{{1, 2}}}}}
	b := &Response{Results: []Result{{Labels: map[string]string{"x": "y"}, Points: []Point{{3, 4}}}}}
	AddLabel(a, "tier", "gateway")
	AddLabel(b, "tier", "backend")
	Merge(a, b)
	if len(a.Results) != 2 || a.Results[0].Labels["tier"] != "gateway" || a.Results[1].Labels["tier"] != "backend" {
		t.Fatalf("merged %+v", a.Results)
	}
}

func TestPollStops(t *testing.T) {
	db := New(Options{})
	reg := telemetry.NewRegistry()
	reg.Counter("vital_x_total", "test").Add(1)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		db.Poll(reg, time.Millisecond, stop)
		close(done)
	}()
	deadline := time.After(2 * time.Second)
	for db.SeriesCount() == 0 {
		select {
		case <-deadline:
			t.Fatal("poll never scraped")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("poll did not stop")
	}
}
