// Package tsdb is an embedded, stdlib-only time-series store for the
// vital_* telemetry registry: a scrape loop samples a Registry at a fixed
// interval into per-series chunked ring storage (timestamp-delta + XOR
// varint encoding, bounded retention, O(1) append), and a range-query
// engine answers rate/increase/avg/max/quantile questions over aligned
// steps — the historical substrate the point-in-time /metrics snapshot
// cannot provide. Both serving tiers embed one: vitald over the
// controller registry, vitalgw over the gateway registry (its /query
// additionally federates the backend's series under a tier label), and
// cmd/vitalreplay drives one deterministically to report
// utilization/fragmentation/SLO curves for a replayed tenant mix.
package tsdb

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"vital/internal/telemetry"
)

// Options tunes a DB.
type Options struct {
	// Retention bounds how far back queries can reach: chunks whose
	// newest sample is older than Retention are dropped on the next
	// append to their series. Zero selects DefaultRetention.
	Retention time.Duration
	// ChunkSamples is the number of samples per chunk (zero selects
	// DefaultChunkSamples).
	ChunkSamples int
	// MaxChunks bounds each series' chunk ring regardless of time — the
	// hard memory ceiling when a scraper runs faster than Retention
	// assumes. Zero selects DefaultMaxChunks.
	MaxChunks int
}

// Defaults: 2 h of 1 s scrapes fit comfortably (per series: at most 64
// chunks × 120 samples), and a 15 s production cadence reaches far past
// the retention horizon before the chunk cap bites.
const (
	DefaultRetention    = 2 * time.Hour
	DefaultChunkSamples = 120
	DefaultMaxChunks    = 64
)

// memSeries is the in-memory state of one stored series.
type memSeries struct {
	name   string
	labels []telemetry.Label // sorted by key
	chunks []*chunk          // oldest first; the last chunk is active
	lastT  int64             // newest appended timestamp (ms)
}

// DB is the store. All methods are safe for concurrent use; one mutex
// guards the series table (scrapes are periodic and queries read-mostly,
// so contention is negligible next to the encode work itself).
type DB struct {
	opts Options

	mu        sync.Mutex
	series    map[string]*memSeries
	order     []string // insertion-ordered keys, for deterministic iteration
	appended  uint64   // total samples ever appended
	evictions uint64   // chunks dropped by retention or the ring cap

	scrapeHist *telemetry.Histogram
	registered map[*telemetry.Registry]bool
	regOrder   []*telemetry.Registry // registration order, for deterministic iteration
}

// New builds an empty DB.
func New(opts Options) *DB {
	if opts.Retention <= 0 {
		opts.Retention = DefaultRetention
	}
	if opts.ChunkSamples <= 0 {
		opts.ChunkSamples = DefaultChunkSamples
	}
	if opts.MaxChunks <= 0 {
		opts.MaxChunks = DefaultMaxChunks
	}
	return &DB{opts: opts, series: map[string]*memSeries{}, registered: map[*telemetry.Registry]bool{}}
}

// Register publishes the DB's own health as vital_tsdb_* series in reg —
// which the scrape loop then samples like any other family, so the store
// observes itself. Idempotent per registry.
func (db *DB) Register(reg *telemetry.Registry) {
	db.mu.Lock()
	if db.registered[reg] {
		db.mu.Unlock()
		return
	}
	db.registered[reg] = true
	db.regOrder = append(db.regOrder, reg)
	db.mu.Unlock()
	reg.CounterFunc("vital_tsdb_samples_total", "Samples appended to the time-series store.", func() float64 {
		db.mu.Lock()
		defer db.mu.Unlock()
		return float64(db.appended)
	})
	reg.CounterFunc("vital_tsdb_evicted_chunks_total", "Chunks dropped by retention or the per-series ring cap.", func() float64 {
		db.mu.Lock()
		defer db.mu.Unlock()
		return float64(db.evictions)
	})
	reg.GaugeFunc("vital_tsdb_series", "Distinct series resident in the time-series store.", func() float64 {
		db.mu.Lock()
		defer db.mu.Unlock()
		return float64(len(db.series))
	})
	reg.GaugeFunc("vital_tsdb_chunk_bytes", "Encoded bytes resident across all series' chunks.", func() float64 {
		db.mu.Lock()
		defer db.mu.Unlock()
		var n int
		for _, s := range db.series {
			for _, c := range s.chunks {
				n += len(c.buf)
			}
		}
		return float64(n)
	})
	hist := reg.Histogram("vital_tsdb_scrape_seconds",
		"Wall time of one registry scrape: flatten, encode, retire expired chunks.", nil)
	db.mu.Lock()
	if db.scrapeHist == nil {
		db.scrapeHist = hist
	}
	db.mu.Unlock()
}

// key renders the series identity: name plus the sorted label signature.
func key(name string, labels []telemetry.Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// sortLabels returns labels sorted by key (copying; inputs are shared).
func sortLabels(labels []telemetry.Label) []telemetry.Label {
	if len(labels) == 0 {
		return nil
	}
	out := append([]telemetry.Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Append records one sample for (name, labels) at t. Labels need not be
// sorted. Out-of-order timestamps (t older than the series' newest) are
// dropped — the scraper is the only writer and time moves forward; a
// replayed clock that regressed would otherwise corrupt delta windows.
func (db *DB) Append(name string, labels []telemetry.Label, t time.Time, v float64) {
	ls := sortLabels(labels)
	k := key(name, ls)
	ms := t.UnixMilli()
	db.mu.Lock()
	defer db.mu.Unlock()
	s, ok := db.series[k]
	if !ok {
		s = &memSeries{name: name, labels: ls}
		db.series[k] = s
		db.order = append(db.order, k)
	}
	if s.lastT != 0 && ms < s.lastT {
		return
	}
	db.appendLocked(s, ms, v)
}

func (db *DB) appendLocked(s *memSeries, ms int64, v float64) {
	if len(s.chunks) == 0 || s.chunks[len(s.chunks)-1].n >= db.opts.ChunkSamples {
		s.chunks = append(s.chunks, &chunk{})
	}
	s.chunks[len(s.chunks)-1].append(ms, v)
	s.lastT = ms
	db.appended++
	// Retire expired chunks (never the active one): past the retention
	// horizon, or beyond the ring cap.
	cutoff := ms - db.opts.Retention.Milliseconds()
	drop := 0
	for drop < len(s.chunks)-1 && (s.chunks[drop].maxT < cutoff || len(s.chunks)-drop > db.opts.MaxChunks) {
		drop++
	}
	if drop > 0 {
		s.chunks = append([]*chunk(nil), s.chunks[drop:]...)
		db.evictions += uint64(drop)
	}
}

// Scrape samples every series of reg at now, appending one point per flat
// sample (histograms expand to their _bucket/_sum/_count series). extra
// labels are attached to every stored series — the replay harness scrapes
// two registries into one DB under tier=backend / tier=gateway.
func (db *DB) Scrape(reg *telemetry.Registry, now time.Time, extra ...telemetry.Label) {
	start := time.Now()
	// Flatten outside db.mu: Samples evaluates GaugeFunc callbacks, and
	// the DB's own Register callbacks take db.mu.
	samples := reg.Samples()
	for _, smp := range samples {
		labels := smp.Labels
		if len(extra) > 0 {
			labels = append(append(make([]telemetry.Label, 0, len(labels)+len(extra)), labels...), extra...)
		}
		db.Append(smp.Name, labels, now, smp.Value)
	}
	db.mu.Lock()
	hist := db.scrapeHist
	db.mu.Unlock()
	if hist != nil {
		hist.ObserveSince(start)
	}
}

// Poll scrapes reg every interval until stop closes. Run it on its own
// goroutine; it returns when stopped.
func (db *DB) Poll(reg *telemetry.Registry, interval time.Duration, stop <-chan struct{}, extra ...telemetry.Label) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-ticker.C:
			db.Scrape(reg, now, extra...)
		}
	}
}

// SeriesCount reports the resident series count.
func (db *DB) SeriesCount() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.series)
}

// Names lists the distinct stored metric names, sorted — the discovery
// surface behind GET /query with no series argument.
func (db *DB) Names() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	seen := map[string]bool{}
	for _, s := range db.series {
		seen[s.name] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// matched returns the series matching name and label equality matchers, in
// deterministic (insertion) order, plus each one's decoded points within
// [fromMs, toMs]. Decoding happens under db.mu; chunks are small and the
// alternative (copying encoded chunks out) costs more than it saves.
func (db *DB) matched(name string, matchers map[string]string, fromMs, toMs int64) []seriesPoints {
	db.mu.Lock()
	defer db.mu.Unlock()
	var out []seriesPoints
	for _, k := range db.order {
		s := db.series[k]
		if s.name != name || !labelsMatch(s.labels, matchers) {
			continue
		}
		sp := seriesPoints{labels: s.labels}
		for _, c := range s.chunks {
			if c.n == 0 || c.maxT < fromMs || c.t0 > toMs {
				continue
			}
			c.iter(func(t int64, v float64) bool {
				if t >= fromMs && t <= toMs {
					sp.pts = append(sp.pts, Point{T: t, V: v})
				}
				return t <= toMs
			})
		}
		if len(sp.pts) > 0 {
			out = append(out, sp)
		}
	}
	return out
}

func labelsMatch(labels []telemetry.Label, matchers map[string]string) bool {
	if len(matchers) == 0 {
		return true
	}
	for k, want := range matchers {
		found := false
		for _, l := range labels {
			if l.Key == k {
				found = l.Value == want
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
