// HTTP surface: both serving tiers mount GET /query over their embedded
// DB through these helpers so the parameter grammar, error shapes, and
// response JSON stay identical — the gateway then federates by running
// the same parsed query against its own DB and the backend's /query and
// re-labeling each side with a tier label.
package tsdb

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"vital/internal/httpapi"
)

// NamesResponse answers GET /query with no series parameter — the
// discovery listing of stored metric names.
type NamesResponse struct {
	Names []string `json:"names"`
}

// ParseHTTPQuery builds a Query from GET /query parameters:
//
//	series  required selector: name or name{key="value",...}
//	func    one of last|avg|max|rate|increase|quantile|raw (default last)
//	q       quantile in (0,1], required when func=quantile
//	start   RFC 3339 timestamp or lookback duration (default 15m)
//	end     RFC 3339 timestamp or lookback duration (default now)
//	step    aligned-step width (default 15s)
//	window  lookback window per step (default: the step)
func ParseHTTPQuery(r *http.Request) (Query, error) {
	var q Query
	name, matchers, err := ParseSelector(r.URL.Query().Get("series"))
	if err != nil {
		return q, err
	}
	q.Name, q.Matchers = name, matchers
	fn, err := httpapi.QueryEnum(r, "func", string(FuncLast), Funcs()...)
	if err != nil {
		return q, err
	}
	q.Func = Func(fn)
	if q.Func == FuncQuantile {
		phi, err := queryFloat(r, "q")
		if err != nil {
			return q, err
		}
		q.Q = phi
	}
	start, err := httpapi.QuerySince(r, "start")
	if err != nil {
		return q, err
	}
	if start.IsZero() {
		start = time.Now().Add(-15 * time.Minute)
	}
	q.Start = start
	end, err := httpapi.QuerySince(r, "end")
	if err != nil {
		return q, err
	}
	if end.IsZero() {
		end = time.Now()
	}
	q.End = end
	if q.Step, err = httpapi.QueryDuration(r, "step", 15*time.Second); err != nil {
		return q, err
	}
	if q.Window, err = httpapi.QueryDuration(r, "window", 0); err != nil {
		return q, err
	}
	return q, nil
}

// queryFloat parses a required float query parameter.
func queryFloat(r *http.Request, name string) (float64, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return 0, fmt.Errorf("bad %s: required for func=quantile (e.g. q=0.99)", name)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q: want a float in (0,1]", name, s)
	}
	return v, nil
}

// ServeQuery is the whole GET /query handler for a tier that serves only
// its own DB (vitald). No series parameter lists stored names; otherwise
// the parsed query runs and the Response is the body.
func (db *DB) ServeQuery(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("series") == "" {
		httpapi.WriteJSON(w, http.StatusOK, NamesResponse{Names: db.Names()})
		return
	}
	q, err := ParseHTTPQuery(r)
	if err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := db.Query(q)
	if err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, err)
		return
	}
	httpapi.WriteJSON(w, http.StatusOK, resp)
}

// AddLabel stamps one label onto every result of a response — the
// gateway's federation step tags each side's series with its tier.
func AddLabel(resp *Response, k, v string) {
	for i := range resp.Results {
		if resp.Results[i].Labels == nil {
			resp.Results[i].Labels = map[string]string{}
		}
		resp.Results[i].Labels[k] = v
	}
}

// Merge appends src's results onto dst (after any re-labeling).
func Merge(dst, src *Response) {
	dst.Results = append(dst.Results, src.Results...)
}
