package tsdb

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"vital/internal/telemetry"
)

// Func names the range functions the engine evaluates per aligned step.
type Func string

// Range functions. All but FuncRaw evaluate over the lookback window
// (t−window, t] at each aligned timestamp t:
//
//   - last: the newest sample in the window (gauge reads);
//   - avg, max: arithmetic mean / maximum of the window's samples;
//   - rate: per-second increase of a counter across the window, reset-
//     adjusted — (adjusted last − first) / (lastT − firstT); needs ≥ 2
//     samples, else the step is a gap;
//   - increase: the reset-adjusted total increase across the window
//     (rate × observed span);
//   - quantile: the φ-quantile estimate over a histogram family's
//     _bucket series — per step, each bucket counter's increase over the
//     window rebuilds the window's distribution, then the standard
//     fixed-bucket linear interpolation (the same estimate
//     telemetry.Histogram.Summary uses) yields the value;
//   - raw: the undecimated stored samples in [start, end] — no alignment,
//     no window; the debugging and monotonicity-audit surface.
const (
	FuncLast     Func = "last"
	FuncAvg      Func = "avg"
	FuncMax      Func = "max"
	FuncRate     Func = "rate"
	FuncIncrease Func = "increase"
	FuncQuantile Func = "quantile"
	FuncRaw      Func = "raw"
)

// Funcs lists the valid function names.
func Funcs() []string {
	return []string{string(FuncLast), string(FuncAvg), string(FuncMax),
		string(FuncRate), string(FuncIncrease), string(FuncQuantile), string(FuncRaw)}
}

// Query is one range query.
type Query struct {
	// Name is the metric (family) name; for quantile it is the histogram
	// family, resolved to its _bucket series internally.
	Name string
	// Matchers are exact-equality label constraints (quantile matches
	// them against the bucket series' labels minus le).
	Matchers map[string]string
	Func     Func
	// Q is the quantile in (0,1], required for FuncQuantile.
	Q float64
	// Start and End bound the query; evaluation happens at every
	// step-aligned timestamp within [Start, End].
	Start, End time.Time
	// Step is the alignment grid and the default lookback window.
	Step time.Duration
	// Window overrides the lookback (zero selects Step). A window wider
	// than the step smooths rate over sparse scrapes.
	Window time.Duration
}

// Point is one (timestamp, value) sample. It marshals as the two-element
// array [t_unix_ms, value] so curves stay compact in JSON reports.
type Point struct {
	T int64
	V float64
}

// MarshalJSON renders [t, v].
func (p Point) MarshalJSON() ([]byte, error) {
	return []byte("[" + strconv.FormatInt(p.T, 10) + "," + formatJSONFloat(p.V) + "]"), nil
}

// UnmarshalJSON parses [t, v] — the gateway federates backend /query
// responses, so the wire shape round-trips.
func (p *Point) UnmarshalJSON(data []byte) error {
	s := strings.TrimSpace(string(data))
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return fmt.Errorf("tsdb: point %q is not a [t, v] pair", s)
	}
	parts := strings.Split(s[1:len(s)-1], ",")
	if len(parts) != 2 {
		return fmt.Errorf("tsdb: point %q is not a [t, v] pair", s)
	}
	t, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
	if err != nil {
		return fmt.Errorf("tsdb: point timestamp: %w", err)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return fmt.Errorf("tsdb: point value: %w", err)
	}
	p.T, p.V = t, v
	return nil
}

// formatJSONFloat renders a float for JSON (NaN/Inf cannot appear: gaps
// are omitted points, not NaN samples).
func formatJSONFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "0"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Result is one output series of a range query.
type Result struct {
	Labels map[string]string `json:"labels,omitempty"`
	Points []Point           `json:"points"`
}

// Response is a full range-query answer — the GET /query wire shape.
type Response struct {
	Series  string   `json:"series"`
	Func    Func     `json:"func"`
	Q       float64  `json:"q,omitempty"`
	StartMs int64    `json:"start_ms"`
	EndMs   int64    `json:"end_ms"`
	StepMs  int64    `json:"step_ms"`
	Results []Result `json:"results"`
}

// seriesPoints pairs a stored series' labels with its decoded points.
type seriesPoints struct {
	labels []telemetry.Label
	pts    []Point
}

// Validate checks the query shape.
func (q *Query) Validate() error {
	if q.Name == "" {
		return fmt.Errorf("tsdb: query needs a series name")
	}
	switch q.Func {
	case FuncLast, FuncAvg, FuncMax, FuncRate, FuncIncrease, FuncRaw:
	case FuncQuantile:
		if !(q.Q > 0 && q.Q <= 1) {
			return fmt.Errorf("tsdb: quantile needs q in (0,1], got %v", q.Q)
		}
	case "":
		return fmt.Errorf("tsdb: query needs a func (one of %s)", strings.Join(Funcs(), ", "))
	default:
		return fmt.Errorf("tsdb: unknown func %q (want one of %s)", q.Func, strings.Join(Funcs(), ", "))
	}
	if q.End.Before(q.Start) {
		return fmt.Errorf("tsdb: end precedes start")
	}
	if q.Func != FuncRaw && q.Step <= 0 {
		return fmt.Errorf("tsdb: query needs a positive step")
	}
	if q.Window < 0 {
		return fmt.Errorf("tsdb: negative window")
	}
	return nil
}

// Query evaluates a range query. Steps are aligned: evaluation timestamps
// are the multiples of Step within [Start, End] (so two queries with the
// same step land on the same grid regardless of their exact start). Steps
// whose window holds no (or for rate, fewer than two) samples are gaps —
// omitted points, never fabricated zeros.
func (db *DB) Query(q Query) (*Response, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	defer db.queryHistObserve(q.Func, time.Now())
	resp := &Response{
		Series:  q.Name,
		Func:    q.Func,
		Q:       q.Q,
		StartMs: q.Start.UnixMilli(),
		EndMs:   q.End.UnixMilli(),
		StepMs:  q.Step.Milliseconds(),
	}
	if q.Func == FuncRaw {
		for _, sp := range db.matched(q.Name, q.Matchers, resp.StartMs, resp.EndMs) {
			resp.Results = append(resp.Results, Result{Labels: labelMap(sp.labels), Points: sp.pts})
		}
		return resp, nil
	}
	window := q.Window
	if window == 0 {
		window = q.Step
	}
	winMs := window.Milliseconds()
	stepMs := resp.StepMs
	first := alignUp(resp.StartMs, stepMs)
	if q.Func == FuncQuantile {
		return db.quantileQuery(q, resp, first, winMs)
	}
	for _, sp := range db.matched(q.Name, q.Matchers, resp.StartMs-winMs, resp.EndMs) {
		res := Result{Labels: labelMap(sp.labels)}
		for t := first; t <= resp.EndMs; t += stepMs {
			if v, ok := evalWindow(q.Func, windowOf(sp.pts, t-winMs, t)); ok {
				res.Points = append(res.Points, Point{T: t, V: v})
			}
		}
		if len(res.Points) > 0 {
			resp.Results = append(resp.Results, res)
		}
	}
	return resp, nil
}

// queryHistObserve records query latency under the func label. The
// histogram is created lazily against whichever registry registered the
// scrape histogram's family (the DB's owner). No-op until Register.
func (db *DB) queryHistObserve(fn Func, start time.Time) {
	db.mu.Lock()
	regs := append([]*telemetry.Registry(nil), db.regOrder...)
	db.mu.Unlock()
	for _, r := range regs {
		r.Histogram("vital_tsdb_query_seconds", "Range-query evaluation latency by function.",
			nil, telemetry.L("func", string(fn))).ObserveSince(start)
	}
}

// alignUp rounds t up to the next multiple of step.
func alignUp(t, step int64) int64 {
	if r := t % step; r != 0 {
		return t + step - r
	}
	return t
}

// windowOf returns the samples with from < T ≤ to (pts sorted by T).
func windowOf(pts []Point, from, to int64) []Point {
	lo := sort.Search(len(pts), func(i int) bool { return pts[i].T > from })
	hi := sort.Search(len(pts), func(i int) bool { return pts[i].T > to })
	return pts[lo:hi]
}

// evalWindow applies a scalar range function to one window of samples.
func evalWindow(fn Func, win []Point) (float64, bool) {
	if len(win) == 0 {
		return 0, false
	}
	switch fn {
	case FuncLast:
		return win[len(win)-1].V, true
	case FuncAvg:
		var sum float64
		for _, p := range win {
			sum += p.V
		}
		return sum / float64(len(win)), true
	case FuncMax:
		max := win[0].V
		for _, p := range win[1:] {
			if p.V > max {
				max = p.V
			}
		}
		return max, true
	case FuncRate, FuncIncrease:
		if len(win) < 2 {
			return 0, false
		}
		inc := counterIncrease(win)
		if fn == FuncIncrease {
			return inc, true
		}
		span := float64(win[len(win)-1].T-win[0].T) / 1000.0
		if span <= 0 {
			return 0, false
		}
		return inc / span, true
	default:
		// FuncRaw and FuncQuantile never reach the scalar evaluator —
		// Query dispatches them before the step loop.
		return 0, false
	}
}

// counterIncrease sums the positive deltas across the window — the
// standard counter-reset adjustment: a drop means the process restarted,
// and counting resumes from the post-reset value.
func counterIncrease(win []Point) float64 {
	var inc float64
	for i := 1; i < len(win); i++ {
		d := win[i].V - win[i-1].V
		if d < 0 {
			// Reset: the new value is entirely new increase.
			d = win[i].V
		}
		inc += d
	}
	return inc
}

// quantileQuery evaluates quantile-over-histogram: the stored _bucket
// counter series regroup (by their labels minus le) into per-instant
// distributions; at each aligned step the per-bucket increase over the
// window rebuilds the distribution of observations that landed in the
// window, and linear interpolation inside the crossing bucket estimates
// the quantile. Windows with no observations are gaps.
func (db *DB) quantileQuery(q Query, resp *Response, first, winMs int64) (*Response, error) {
	bucketSeries := db.matched(q.Name+"_bucket", q.Matchers, resp.StartMs-winMs, resp.EndMs)
	groups := map[string]*bucketGroup{}
	var order []string
	for _, sp := range bucketSeries {
		le, rest := splitLE(sp.labels)
		if le == "" {
			continue
		}
		upper := math.Inf(+1)
		if le != "+Inf" {
			u, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			upper = u
		}
		k := key(q.Name, rest)
		g, ok := groups[k]
		if !ok {
			g = &bucketGroup{labels: rest}
			groups[k] = g
			order = append(order, k)
		}
		g.buckets = append(g.buckets, bucketSeriesPoints{upper: upper, pts: sp.pts})
	}
	stepMs := resp.StepMs
	for _, k := range order {
		g := groups[k]
		sort.Slice(g.buckets, func(i, j int) bool { return g.buckets[i].upper < g.buckets[j].upper })
		res := Result{Labels: labelMap(g.labels)}
		for t := first; t <= resp.EndMs; t += stepMs {
			if v, ok := g.quantileAt(q.Q, t-winMs, t); ok {
				res.Points = append(res.Points, Point{T: t, V: v})
			}
		}
		if len(res.Points) > 0 {
			resp.Results = append(resp.Results, res)
		}
	}
	return resp, nil
}

type bucketSeriesPoints struct {
	upper float64
	pts   []Point
}

type bucketGroup struct {
	labels  []telemetry.Label
	buckets []bucketSeriesPoints
}

// quantileAt estimates the φ-quantile of the observations recorded in
// (from, to]: each bucket's cumulative counter increase over the window is
// that bucket's share of the window's distribution.
func (g *bucketGroup) quantileAt(phi float64, from, to int64) (float64, bool) {
	cum := make([]float64, len(g.buckets))
	any := false
	for i, b := range g.buckets {
		win := windowOf(b.pts, from, to)
		if len(win) >= 2 {
			cum[i] = counterIncrease(win)
			any = true
		}
	}
	if !any {
		return 0, false
	}
	// Repair any sampling raggedness: cumulative counts must be
	// non-decreasing across ascending bounds.
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			cum[i] = cum[i-1]
		}
	}
	total := cum[len(cum)-1]
	if total <= 0 {
		return 0, false
	}
	rank := phi * total
	for i, c := range cum {
		if c < rank {
			continue
		}
		upper := g.buckets[i].upper
		if math.IsInf(upper, +1) {
			// Rank in the +Inf bucket: the highest finite bound is the
			// best point estimate the ladder offers.
			if i == 0 {
				return 0, false
			}
			return g.buckets[i-1].upper, true
		}
		lo, below := 0.0, 0.0
		if i > 0 {
			lo, below = g.buckets[i-1].upper, cum[i-1]
		}
		inBucket := c - below
		if inBucket <= 0 {
			return upper, true
		}
		return lo + (upper-lo)*(rank-below)/inBucket, true
	}
	if len(g.buckets) == 0 {
		return 0, false
	}
	return g.buckets[len(g.buckets)-1].upper, true
}

// splitLE extracts the le label, returning the remaining labels.
func splitLE(labels []telemetry.Label) (string, []telemetry.Label) {
	le := ""
	rest := make([]telemetry.Label, 0, len(labels))
	for _, l := range labels {
		if l.Key == "le" {
			le = l.Value
			continue
		}
		rest = append(rest, l)
	}
	return le, rest
}

func labelMap(labels []telemetry.Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// ParseSelector parses "name" or `name{key="value",key2="value2"}` into a
// metric name and equality matchers.
func ParseSelector(s string) (string, map[string]string, error) {
	s = strings.TrimSpace(s)
	brace := strings.IndexByte(s, '{')
	if brace < 0 {
		if s == "" {
			return "", nil, fmt.Errorf("tsdb: empty series selector")
		}
		return s, nil, nil
	}
	name := s[:brace]
	if name == "" {
		return "", nil, fmt.Errorf("tsdb: selector %q has no metric name", s)
	}
	if !strings.HasSuffix(s, "}") {
		return "", nil, fmt.Errorf("tsdb: selector %q: unterminated label matchers", s)
	}
	matchers := map[string]string{}
	body := strings.TrimSpace(s[brace+1 : len(s)-1])
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq <= 0 {
			return "", nil, fmt.Errorf("tsdb: selector %q: malformed matcher near %q", s, body)
		}
		k := strings.TrimSpace(body[:eq])
		rest := strings.TrimSpace(body[eq+1:])
		if !strings.HasPrefix(rest, `"`) {
			return "", nil, fmt.Errorf("tsdb: selector %q: matcher value for %q must be quoted", s, k)
		}
		end := strings.IndexByte(rest[1:], '"')
		if end < 0 {
			return "", nil, fmt.Errorf("tsdb: selector %q: unterminated value for %q", s, k)
		}
		matchers[k] = rest[1 : 1+end]
		body = strings.TrimSpace(rest[end+2:])
		body = strings.TrimPrefix(body, ",")
		body = strings.TrimSpace(body)
	}
	return name, matchers, nil
}
