package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("vital_test_total", "test counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("vital_test_total", "test counter"); again != c {
		t.Fatalf("second lookup returned a different counter handle")
	}
	g := r.Gauge("vital_test_gauge", "test gauge", L("board", "0"))
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	// Distinct labels are distinct series.
	g1 := r.Gauge("vital_test_gauge", "test gauge", L("board", "1"))
	if g1 == g {
		t.Fatalf("distinct labels shared one series")
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("vital_test_total", "")
	defer func() {
		if recover() == nil {
			t.Fatalf("registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("vital_test_total", "")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatalf("invalid metric name did not panic")
		}
	}()
	r.Counter("vital-bad-name", "")
}

func TestHistogramBucketsAndSummary(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("vital_test_seconds", "", []float64{0.001, 0.01, 0.1, 1})
	// 100 observations at 5ms: p50/p90/p99 all interpolate inside the
	// (0.001, 0.01] bucket.
	for i := 0; i < 100; i++ {
		h.Observe(0.005)
	}
	s := h.Summary()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if math.Abs(s.Sum-0.5) > 1e-9 {
		t.Fatalf("sum = %v, want 0.5", s.Sum)
	}
	for _, q := range []float64{s.P50, s.P90, s.P99} {
		if q <= 0.001 || q > 0.01 {
			t.Fatalf("quantile %v outside the observed bucket (0.001, 0.01]", q)
		}
	}
	if s.P50 > s.P90 || s.P90 > s.P99 {
		t.Fatalf("quantiles not monotone: %v %v %v", s.P50, s.P90, s.P99)
	}
}

func TestHistogramQuantileSpread(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("vital_test_seconds", "", []float64{0.001, 0.01, 0.1, 1})
	// 90 fast + 10 slow: p50 in the first bucket, p99 in the slow bucket.
	for i := 0; i < 90; i++ {
		h.Observe(0.0005)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.05)
	}
	s := h.Summary()
	if s.P50 > 0.001 {
		t.Fatalf("p50 = %v, want <= 0.001", s.P50)
	}
	if s.P99 <= 0.01 || s.P99 > 0.1 {
		t.Fatalf("p99 = %v, want in (0.01, 0.1]", s.P99)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("vital_test_seconds", "", []float64{0.001, 0.01})
	h.Observe(5) // beyond every finite bucket
	s := h.Summary()
	if s.Count != 1 {
		t.Fatalf("count = %d, want 1", s.Count)
	}
	// The +Inf bucket's best point estimate is the highest finite bound.
	if s.P99 != 0.01 {
		t.Fatalf("p99 = %v, want the highest finite bound 0.01", s.P99)
	}
}

func TestHistogramSingleBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("vital_test_seconds", "", []float64{0.2})
	for i := 0; i < 10; i++ {
		h.Observe(0.05)
	}
	s := h.Summary()
	// One finite bucket holding everything: rank 5 of 10 interpolates to
	// 0 + 0.2·(5/10) = 0.1.
	if math.Abs(s.P50-0.1) > 1e-12 {
		t.Fatalf("p50 = %v, want 0.1", s.P50)
	}
}

func TestHistogramExactBoundaryRank(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("vital_test_seconds", "", []float64{0.1, 0.5})
	for i := 0; i < 10; i++ {
		h.Observe(0.05) // ≤ 0.1
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.3) // (0.1, 0.5]
	}
	// rank = 0.5·20 = 10, exactly the first bucket's cumulative count:
	// interpolation reaches the 0.1 boundary without spilling over.
	if got := h.Summary().P50; math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("p50 = %v, want exactly the 0.1 bucket boundary", got)
	}
}

func TestHistogramEmptySummary(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("vital_test_seconds", "", nil)
	s := h.Summary()
	if s.Count != 0 || s.Sum != 0 || s.P50 != 0 || s.P99 != 0 {
		t.Fatalf("empty histogram summary not zero: %+v", s)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("vital_test_seconds", "", nil)
	h.ObserveDuration(3 * time.Millisecond)
	if s := h.Summary(); math.Abs(s.Sum-0.003) > 1e-9 {
		t.Fatalf("sum = %v, want 0.003", s.Sum)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("vital_test_seconds", "", nil)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.002)
			}
		}()
	}
	wg.Wait()
	s := h.Summary()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	if math.Abs(s.Sum-workers*per*0.002) > 1e-6 {
		t.Fatalf("sum = %v, want %v", s.Sum, workers*per*0.002)
	}
}

func TestGaugeFuncEvaluatedAtSnapshot(t *testing.T) {
	r := NewRegistry()
	v := 1.0
	r.GaugeFunc("vital_test_live", "live gauge", func() float64 { return v })
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Series[0].Value != 1 {
		t.Fatalf("snapshot = %+v, want value 1", snap)
	}
	v = 7
	if got := r.Snapshot()[0].Series[0].Value; got != 7 {
		t.Fatalf("second snapshot = %v, want the live value 7", got)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("vital_b_total", "")
	r.Counter("vital_a_total", "")
	r.Gauge("vital_c", "", L("board", "1"))
	r.Gauge("vital_c", "", L("board", "0"))
	snap := r.Snapshot()
	if snap[0].Name != "vital_a_total" || snap[1].Name != "vital_b_total" || snap[2].Name != "vital_c" {
		t.Fatalf("families not sorted: %v %v %v", snap[0].Name, snap[1].Name, snap[2].Name)
	}
	if snap[2].Series[0].Labels["board"] != "0" || snap[2].Series[1].Labels["board"] != "1" {
		t.Fatalf("series not sorted by label signature: %+v", snap[2].Series)
	}
}

// Regression: the first caller of a (name, labels) pair used to fill in the
// typed slot after lookup had released the registry mutex, so a concurrent
// caller of the same series raced its read of s.counter against the
// creator's write. Lazy creation under parallel HTTP traffic (per-status
// counters in InstrumentRoute) is exactly this shape.
func TestRegistryConcurrentLazyCreate(t *testing.T) {
	reg := NewRegistry()
	const workers = 16
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				reg.Counter("lazy_total", "", L("code", "200")).Inc()
				reg.Gauge("lazy_depth", "", L("class", "latency")).Set(float64(j))
				reg.Histogram("lazy_seconds", "", nil, L("route", "/submit")).Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("lazy_total", "", L("code", "200")).Value(); got != workers*50 {
		t.Fatalf("counter = %d, want %d", got, workers*50)
	}
}
