package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// MetricType classifies a metric family for exposition.
type MetricType string

// Metric types, matching the Prometheus text-format TYPE keywords.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// Label is one name=value dimension of a metric series.
type Label struct {
	Key   string
	Value string
}

// L builds a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Counter is a monotonically increasing count. All methods are safe for
// concurrent use and lock-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. All methods are safe for
// concurrent use and lock-free.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets is the default latency bucket ladder, in seconds: 5µs to 10s,
// wide enough to cover a cache-hit compile (tens of µs), a deploy (ms), and
// a cold Table 2 compile (seconds) in one histogram shape.
var DefBuckets = []float64{
	5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Exemplar pins one recent observation to the trace that produced it,
// surfaced in the Prometheus exposition so a slow bucket links straight
// to a concrete trace ID.
type Exemplar struct {
	Value   float64
	TraceID string
}

// Histogram is a fixed-bucket latency histogram. Observations are two
// atomic adds plus a short bucket scan — cheap enough for every hot path.
type Histogram struct {
	// uppers holds the bucket upper bounds, ascending; counts has one extra
	// slot for the implicit +Inf bucket. Bucket counts are stored
	// non-cumulative and summed at read time.
	uppers []float64
	counts []atomic.Uint64
	count  atomic.Uint64
	// sum accumulates seconds as float bits via CAS: observations are
	// per-operation (not per-packet), so contention is negligible.
	sum atomic.Uint64
	// exemplars keeps the latest traced observation per bucket (last
	// writer wins; a torn pair is impossible since the whole Exemplar
	// swaps atomically).
	exemplars []atomic.Pointer[Exemplar]
}

func newHistogram(uppers []float64) *Histogram {
	if len(uppers) == 0 {
		uppers = DefBuckets
	}
	for i := 1; i < len(uppers); i++ {
		if uppers[i] <= uppers[i-1] {
			panic(fmt.Sprintf("telemetry: histogram buckets not ascending: %v", uppers))
		}
	}
	return &Histogram{
		uppers:    append([]float64(nil), uppers...),
		counts:    make([]atomic.Uint64, len(uppers)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(uppers)+1),
	}
}

// Observe records one value (in seconds for latency histograms).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.uppers, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveExemplar records one value and, when traceID is nonempty, pins
// it as the bucket's exemplar so the exposition can point at the trace
// behind the observation.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	i := sort.SearchFloat64s(h.uppers, v)
	h.exemplars[i].Store(&Exemplar{Value: v, TraceID: traceID})
}

// Exemplars snapshots the per-bucket exemplars, aligned with the bucket
// ladder (+Inf last); slots without a traced observation are nil.
func (h *Histogram) Exemplars() []*Exemplar {
	out := make([]*Exemplar, len(h.exemplars))
	for i := range h.exemplars {
		out[i] = h.exemplars[i].Load()
	}
	return out
}

// ObserveDuration records d as seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveSince records the time elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.ObserveDuration(time.Since(start)) }

// snapshot returns cumulative bucket counts (aligned with uppers, +Inf
// last), the total count and the sum.
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum float64) {
	cum = make([]uint64, len(h.counts))
	var run uint64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return cum, h.count.Load(), math.Float64frombits(h.sum.Load())
}

// HistogramSummary condenses a histogram for JSON payloads and CLIs. The
// quantiles are estimated by linear interpolation within the bucket that
// crosses the target rank, the standard fixed-bucket estimate.
type HistogramSummary struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum_seconds"`
	P50   float64 `json:"p50_seconds"`
	P90   float64 `json:"p90_seconds"`
	P99   float64 `json:"p99_seconds"`
}

// Summary computes the current count, sum and p50/p90/p99 estimates.
func (h *Histogram) Summary() HistogramSummary {
	cum, count, sum := h.snapshot()
	return HistogramSummary{
		Count: count,
		Sum:   sum,
		P50:   h.quantile(cum, count, 0.50),
		P90:   h.quantile(cum, count, 0.90),
		P99:   h.quantile(cum, count, 0.99),
	}
}

func (h *Histogram) quantile(cum []uint64, count uint64, q float64) float64 {
	if count == 0 {
		return 0
	}
	rank := q * float64(count)
	for i, c := range cum {
		if float64(c) < rank {
			continue
		}
		if i == len(h.uppers) {
			// Rank landed in the +Inf bucket: the best point estimate the
			// fixed ladder offers is the highest finite bound.
			return h.uppers[len(h.uppers)-1]
		}
		lo := 0.0
		var below uint64
		if i > 0 {
			lo = h.uppers[i-1]
			below = cum[i-1]
		}
		width := h.uppers[i] - lo
		inBucket := float64(c - below)
		if inBucket == 0 {
			return h.uppers[i]
		}
		return lo + width*(rank-float64(below))/inBucket
	}
	return h.uppers[len(h.uppers)-1]
}

// series is one labeled instance within a family: exactly one of counter,
// gauge, hist or fn is set (fn serves both counter- and gauge-typed
// scrape-time callbacks).
type series struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// family groups the series of one metric name.
type family struct {
	name   string
	help   string
	typ    MetricType
	uppers []float64 // histogram families only
	series map[string]*series
}

// Registry is a set of named metrics. Get-or-create lookups take a mutex;
// the returned handles are lock-free, so hot paths resolve once and update
// forever.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// signature renders labels as a canonical sorted key.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	return b.String()
}

func validate(name string, labels []Label) {
	if !metricNameRe.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelNameRe.MatchString(l.Key) {
			panic(fmt.Sprintf("telemetry: metric %q: invalid label name %q", name, l.Key))
		}
	}
}

// lookup returns the family and series for (name, labels), creating either
// as needed. A name registered twice with different types is a programming
// error and panics. The typed slot (counter, gauge or histogram) is filled
// in while r.mu is still held: a series must be fully built before any
// concurrent lookup of the same (name, labels) can observe it, otherwise a
// second caller races its read of the slot against the creator's write.
func (r *Registry) lookup(name, help string, typ MetricType, uppers []float64, labels []Label) *series {
	validate(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, uppers: uppers, series: map[string]*series{}}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.typ, typ))
	}
	sig := signature(labels)
	s, ok := f.series[sig]
	if !ok {
		s = &series{labels: append([]Label(nil), labels...)}
		switch typ {
		case TypeCounter:
			s.counter = &Counter{}
		case TypeGauge:
			s.gauge = &Gauge{}
		case TypeHistogram:
			s.hist = newHistogram(f.uppers)
		}
		f.series[sig] = s
	}
	return s
}

// Counter returns the counter for (name, labels), creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, TypeCounter, nil, labels)
	if s.counter == nil {
		panic(fmt.Sprintf("telemetry: metric %q already registered as a callback", name))
	}
	return s.counter
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, TypeGauge, nil, labels)
	if s.gauge == nil {
		panic(fmt.Sprintf("telemetry: metric %q already registered as a callback", name))
	}
	return s.gauge
}

// Histogram returns the histogram for (name, labels), creating it with the
// given bucket upper bounds (nil selects DefBuckets) on first use. Every
// series of a family shares the family's bucket ladder.
func (r *Registry) Histogram(name, help string, uppers []float64, labels ...Label) *Histogram {
	s := r.lookup(name, help, TypeHistogram, uppers, labels)
	if s.hist == nil {
		panic(fmt.Sprintf("telemetry: metric %q already registered as a callback", name))
	}
	return s.hist
}

// GaugeFunc registers a scrape-time callback as a gauge series: fn is
// evaluated at every exposition and snapshot, so the value is always live
// and the instrumented code keeps no per-operation bookkeeping.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.lookup(name, help, TypeGauge, nil, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.gauge, s.counter = nil, nil
	s.fn = fn
}

// CounterFunc registers a scrape-time callback as a counter series; fn must
// be monotone (it reads an existing counter, e.g. cache hit totals).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.lookup(name, help, TypeCounter, nil, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.gauge, s.counter = nil, nil
	s.fn = fn
}

// SeriesSnapshot is one series' current value for JSON payloads.
type SeriesSnapshot struct {
	Labels    map[string]string `json:"labels,omitempty"`
	Value     float64           `json:"value"`
	Histogram *HistogramSummary `json:"histogram,omitempty"`
}

// FamilySnapshot is one family's current state for JSON payloads.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Type   MetricType       `json:"type"`
	Help   string           `json:"help,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot returns every family's current state, sorted by name with
// series sorted by label signature — a deterministic JSON rendering.
func (r *Registry) Snapshot() []FamilySnapshot {
	fams, sigs := r.collect()
	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Type: f.typ, Help: f.help}
		for _, sig := range sigs[f.name] {
			s := f.series[sig]
			ss := SeriesSnapshot{Labels: labelMap(s.labels)}
			switch {
			case s.hist != nil:
				sum := s.hist.Summary()
				ss.Histogram = &sum
				ss.Value = sum.Sum
			case s.fn != nil:
				ss.Value = s.fn()
			case s.counter != nil:
				ss.Value = float64(s.counter.Value())
			case s.gauge != nil:
				ss.Value = s.gauge.Value()
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	return out
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// collect snapshots the family table in deterministic order: families
// sorted by name, each family's series signatures sorted. Callers iterate
// without holding r.mu (series handles are internally synchronized; fn
// callbacks may take their own locks).
func (r *Registry) collect() ([]*family, map[string][]string) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	sigs := make(map[string][]string, len(r.families))
	for name, f := range r.families {
		fams = append(fams, f)
		ss := make([]string, 0, len(f.series))
		for sig := range f.series {
			ss = append(ss, sig)
		}
		sort.Strings(ss)
		sigs[name] = ss
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams, sigs
}
