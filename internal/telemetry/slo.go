package telemetry

import (
	"math"
	"sort"
	"sync"
	"time"
)

// SLOObjective declares a success-rate target over a rolling
// error-budget window: "99.9% of requests succeed over any 1h".
type SLOObjective struct {
	Target float64       `json:"target"`
	Window time.Duration `json:"-"`
}

// BurnRateRule is one multi-window burn-rate alert condition (the
// Google SRE workbook shape): it trips only when BOTH the short and the
// long window burn the error budget faster than Factor×. The short
// window makes the alert reset quickly once the outage ends; the long
// window keeps a brief blip from paging.
type BurnRateRule struct {
	Name   string        `json:"name"`
	Short  time.Duration `json:"-"`
	Long   time.Duration `json:"-"`
	Factor float64       `json:"factor"`
}

// DefaultBurnRateRules returns the stock two-rule ladder: a fast-burn
// rule (budget gone in under an hour at the observed rate) and a
// slow-burn rule (steady leak).
func DefaultBurnRateRules() []BurnRateRule {
	return []BurnRateRule{
		{Name: "fast_burn", Short: 2 * time.Minute, Long: 15 * time.Minute, Factor: 14.4},
		{Name: "slow_burn", Short: 15 * time.Minute, Long: time.Hour, Factor: 6},
	}
}

// sloBucket is one fixed-width time slice of good/bad totals.
type sloBucket struct {
	start time.Time
	good  uint64
	bad   uint64
}

// SLO tracks one subject's (one tenant's) good/bad events in a bucketed
// rolling window and derives error rate, budget consumption and
// windowed burn rates. Recording is a mutex-guarded bucket bump — cheap
// enough for the gateway's per-request path.
type SLO struct {
	obj   SLOObjective
	rules []BurnRateRule
	res   time.Duration
	now   func() time.Time

	mu      sync.Mutex
	buckets []sloBucket
}

// NewSLO builds a tracker for one subject. Bucket resolution adapts to
// the narrowest window in play so tiny smoke-test windows (hundreds of
// milliseconds) resolve as faithfully as production hours.
func NewSLO(obj SLOObjective, rules []BurnRateRule) *SLO {
	if obj.Window <= 0 {
		obj.Window = time.Hour
	}
	if obj.Target <= 0 || obj.Target >= 1 {
		obj.Target = 0.999
	}
	narrow, widest := obj.Window, obj.Window
	for _, r := range rules {
		if r.Short > 0 && r.Short < narrow {
			narrow = r.Short
		}
		if r.Long > widest {
			widest = r.Long
		}
	}
	res := narrow / 4
	if res < time.Millisecond {
		res = time.Millisecond
	}
	n := int(widest/res) + 2
	return &SLO{
		obj:     obj,
		rules:   rules,
		res:     res,
		now:     time.Now,
		buckets: make([]sloBucket, n),
	}
}

// Record adds one event outcome.
func (s *SLO) Record(ok bool) {
	now := s.now()
	slot := now.Truncate(s.res)
	i := int(slot.UnixNano()/int64(s.res)) % len(s.buckets)
	if i < 0 {
		i += len(s.buckets)
	}
	s.mu.Lock()
	b := &s.buckets[i]
	if !b.start.Equal(slot) {
		*b = sloBucket{start: slot}
	}
	if ok {
		b.good++
	} else {
		b.bad++
	}
	s.mu.Unlock()
}

// totals sums the buckets inside [now-window, now].
func (s *SLO) totals(window time.Duration, now time.Time) (good, bad uint64) {
	cutoff := now.Add(-window)
	s.mu.Lock()
	for i := range s.buckets {
		b := &s.buckets[i]
		if b.start.IsZero() || b.start.Before(cutoff.Truncate(s.res)) || b.start.After(now) {
			continue
		}
		good += b.good
		bad += b.bad
	}
	s.mu.Unlock()
	return good, bad
}

// burnRate is the windowed error rate divided by the rate the objective
// allows: 1.0 means the error budget drains exactly over the window,
// 2.0 means twice as fast. An empty window burns nothing.
func (s *SLO) burnRate(window time.Duration, now time.Time) float64 {
	good, bad := s.totals(window, now)
	total := good + bad
	if total == 0 {
		return 0
	}
	allowed := 1 - s.obj.Target
	if allowed <= 0 {
		return math.Inf(+1)
	}
	return (float64(bad) / float64(total)) / allowed
}

// RuleBurn returns the effective burn for one rule — the minimum of the
// short- and long-window burns, so both must exceed the factor for the
// rule to trip. This is the Source an AlertRule wraps.
func (s *SLO) RuleBurn(rule BurnRateRule) float64 {
	now := s.now()
	return math.Min(s.burnRate(rule.Short, now), s.burnRate(rule.Long, now))
}

// BurnRateStatus reports one rule's current burn readings.
type BurnRateStatus struct {
	Name         string  `json:"name"`
	ShortSeconds float64 `json:"short_seconds"`
	LongSeconds  float64 `json:"long_seconds"`
	Factor       float64 `json:"factor"`
	ShortBurn    float64 `json:"short_burn"`
	LongBurn     float64 `json:"long_burn"`
	Burn         float64 `json:"burn"` // min(short, long): what the alert rule sees
}

// SLOStatus is one subject's full error-budget accounting.
type SLOStatus struct {
	Target          float64          `json:"target"`
	WindowSeconds   float64          `json:"window_seconds"`
	Total           uint64           `json:"total"`
	Errors          uint64           `json:"errors"`
	ErrorRate       float64          `json:"error_rate"`
	BudgetRemaining float64          `json:"budget_remaining"` // fraction of the error budget left (negative = overspent)
	Burn            []BurnRateStatus `json:"burn,omitempty"`
}

// Status computes the subject's current standing over its budget window.
func (s *SLO) Status() SLOStatus {
	now := s.now()
	good, bad := s.totals(s.obj.Window, now)
	total := good + bad
	st := SLOStatus{
		Target:          s.obj.Target,
		WindowSeconds:   s.obj.Window.Seconds(),
		Total:           total,
		Errors:          bad,
		BudgetRemaining: 1,
	}
	if total > 0 {
		st.ErrorRate = float64(bad) / float64(total)
		if allowed := float64(total) * (1 - s.obj.Target); allowed > 0 {
			st.BudgetRemaining = 1 - float64(bad)/allowed
		} else if bad > 0 {
			st.BudgetRemaining = math.Inf(-1)
		}
	}
	for _, r := range s.rules {
		shortBurn := s.burnRate(r.Short, now)
		longBurn := s.burnRate(r.Long, now)
		st.Burn = append(st.Burn, BurnRateStatus{
			Name:         r.Name,
			ShortSeconds: r.Short.Seconds(),
			LongSeconds:  r.Long.Seconds(),
			Factor:       r.Factor,
			ShortBurn:    shortBurn,
			LongBurn:     longBurn,
			Burn:         math.Min(shortBurn, longBurn),
		})
	}
	return st
}

// SLOSet manages one SLO tracker per subject (per tenant) under a
// shared objective and rule ladder. Subjects are expected to come from
// a bounded set (the gateway's static token→tenant map), mirroring the
// metrichygiene label-cardinality guard.
type SLOSet struct {
	obj   SLOObjective
	rules []BurnRateRule

	mu   sync.Mutex
	slos map[string]*SLO
}

// NewSLOSet builds an empty set; trackers materialize on first Record
// or Get.
func NewSLOSet(obj SLOObjective, rules []BurnRateRule) *SLOSet {
	return &SLOSet{obj: obj, rules: rules, slos: map[string]*SLO{}}
}

// Objective returns the shared objective.
func (ss *SLOSet) Objective() SLOObjective { return ss.obj }

// Rules returns the shared burn-rate rule ladder.
func (ss *SLOSet) Rules() []BurnRateRule { return ss.rules }

// Get returns the subject's tracker, creating it on first use.
func (ss *SLOSet) Get(name string) *SLO {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	s, ok := ss.slos[name]
	if !ok {
		s = NewSLO(ss.obj, ss.rules)
		ss.slos[name] = s
	}
	return s
}

// Record adds one event outcome for the subject.
func (ss *SLOSet) Record(name string, ok bool) { ss.Get(name).Record(ok) }

// Status reports every known subject's standing, keyed by subject name.
func (ss *SLOSet) Status() map[string]SLOStatus {
	ss.mu.Lock()
	slos := make(map[string]*SLO, len(ss.slos))
	for name, s := range ss.slos {
		slos[name] = s
	}
	ss.mu.Unlock()
	out := make(map[string]SLOStatus, len(slos))
	for name, s := range slos {
		out[name] = s.Status()
	}
	return out
}

// Names returns the known subjects, sorted.
func (ss *SLOSet) Names() []string {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	names := make([]string, 0, len(ss.slos))
	for name := range ss.slos {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
