package telemetry

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Attr is one key=value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// String builds a string attr.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attr.
func Int(key string, v int) Attr { return Attr{Key: key, Value: strconv.Itoa(v)} }

// SpanData is one finished span of a trace.
type SpanData struct {
	ID     int64     `json:"id"`
	Parent int64     `json:"parent"` // 0 for the root span
	Name   string    `json:"name"`
	Start  time.Time `json:"start"`
	// Duration marshals as integer nanoseconds.
	Duration time.Duration     `json:"duration_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// TraceSummary identifies one recent trace without its span payload.
type TraceSummary struct {
	ID    string    `json:"id"`
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	// Duration marshals as integer nanoseconds.
	Duration time.Duration     `json:"duration_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Spans    int               `json:"spans"`
}

// TraceData is one complete trace: the root span's identity plus every
// finished span, in end order.
type TraceData struct {
	TraceSummary
	AllSpans []SpanData `json:"all_spans"`
}

// trace accumulates the spans of one in-flight trace. Spans append on End
// under mu (parallel P&R workers end spans concurrently); when the root
// ends, the accumulated spans are committed to the tracer's ring.
type trace struct {
	id     string
	tracer *Tracer

	mu       sync.Mutex
	nextSpan int64
	spans    []SpanData
	done     bool
}

// Span is a live (unfinished) span. A nil *Span is a valid no-op receiver:
// call sites instrument unconditionally and pay one nil check when tracing
// is off.
type Span struct {
	t      *trace
	id     int64
	parent int64
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs map[string]string
}

// Tracer records completed traces into a bounded ring (oldest evicted
// first).
type Tracer struct {
	mu    sync.Mutex
	limit int
	seq   uint64
	// ring is circular once full; next is the oldest slot.
	ring []TraceData
	next int
}

// DefaultTraceLimit is the number of recent traces a tracer retains.
const DefaultTraceLimit = 256

// NewTracer returns a tracer retaining up to limit recent traces
// (limit <= 0 selects DefaultTraceLimit).
func NewTracer(limit int) *Tracer {
	if limit <= 0 {
		limit = DefaultTraceLimit
	}
	return &Tracer{limit: limit}
}

// Start begins a new trace rooted at a span with the given name. Safe on a
// nil tracer, which returns a nil (no-op) span.
func (tr *Tracer) Start(name string, attrs ...Attr) *Span {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	tr.seq++
	id := tr.seq
	tr.mu.Unlock()
	t := &trace{id: fmt.Sprintf("%08x", id), tracer: tr, nextSpan: 1}
	return &Span{t: t, id: 1, name: name, start: time.Now(), attrs: attrMap(attrs)}
}

func attrMap(attrs []Attr) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// TraceID returns the ID of the span's trace ("" on a nil span).
func (sp *Span) TraceID() string {
	if sp == nil {
		return ""
	}
	return sp.t.id
}

// Child begins a sub-span. Safe on a nil span (returns nil).
func (sp *Span) Child(name string, attrs ...Attr) *Span {
	if sp == nil {
		return nil
	}
	t := sp.t
	t.mu.Lock()
	t.nextSpan++
	id := t.nextSpan
	t.mu.Unlock()
	return &Span{t: t, id: id, parent: sp.id, name: name, start: time.Now(), attrs: attrMap(attrs)}
}

// SetAttr annotates the span. Safe on a nil span.
func (sp *Span) SetAttr(key, value string) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.attrs == nil {
		sp.attrs = make(map[string]string, 1)
	}
	sp.attrs[key] = value
	sp.mu.Unlock()
}

// End finishes the span, recording it into its trace; ending the root span
// commits the whole trace to the tracer's ring. Safe on a nil span; ending
// twice records twice (don't).
func (sp *Span) End() {
	if sp == nil {
		return
	}
	d := time.Since(sp.start)
	sp.mu.Lock()
	attrs := sp.attrs
	sp.attrs = nil
	sp.mu.Unlock()
	data := SpanData{ID: sp.id, Parent: sp.parent, Name: sp.name, Start: sp.start, Duration: d, Attrs: attrs}
	t := sp.t
	t.mu.Lock()
	if !t.done {
		t.spans = append(t.spans, data)
	}
	if sp.parent != 0 {
		t.mu.Unlock()
		return
	}
	t.done = true
	spans := t.spans
	t.spans = nil
	t.mu.Unlock()
	t.tracer.commit(TraceData{
		TraceSummary: TraceSummary{
			ID: t.id, Name: sp.name, Start: sp.start, Duration: d,
			Attrs: attrs, Spans: len(spans),
		},
		AllSpans: spans,
	})
}

func (tr *Tracer) commit(td TraceData) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.ring) < tr.limit {
		tr.ring = append(tr.ring, td)
		return
	}
	tr.ring[tr.next] = td
	tr.next = (tr.next + 1) % tr.limit
}

// Get returns a completed trace by ID.
func (tr *Tracer) Get(id string) (TraceData, bool) {
	if tr == nil {
		return TraceData{}, false
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for i := range tr.ring {
		if tr.ring[i].ID == id {
			return tr.ring[i], true
		}
	}
	return TraceData{}, false
}

// Recent returns summaries of the most recent completed traces, newest
// first, at most max (max <= 0 returns everything retained).
func (tr *Tracer) Recent(max int) []TraceSummary {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := len(tr.ring)
	if max > 0 && max < n {
		n = max
	}
	out := make([]TraceSummary, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the newest slot (next-1 once wrapped,
		// len-1 while still growing).
		idx := (tr.next + len(tr.ring) - 1 - i + len(tr.ring)) % len(tr.ring)
		out = append(out, tr.ring[idx].TraceSummary)
	}
	return out
}

// ContextWithSpan returns a context carrying the span; workers retrieve it
// with SpanFromContext (or StartChild) to attach fan-out spans to the right
// parent across goroutines.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

type spanCtxKey struct{}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// StartChild begins a child of the context's span (nil, and a no-op, when
// the context carries none).
func StartChild(ctx context.Context, name string, attrs ...Attr) *Span {
	return SpanFromContext(ctx).Child(name, attrs...)
}

// Tree renders the trace as an indented stage tree — the `vitalctl trace`
// view. Children sort by start time (then span ID) under their parent, so
// the serial stages read top to bottom and parallel fan-out spans group
// under their fan-out parent.
func (td *TraceData) Tree() string {
	children := map[int64][]SpanData{}
	for _, sp := range td.AllSpans {
		children[sp.Parent] = append(children[sp.Parent], sp)
	}
	for _, cs := range children {
		sort.Slice(cs, func(i, j int) bool {
			if !cs[i].Start.Equal(cs[j].Start) {
				return cs[i].Start.Before(cs[j].Start)
			}
			return cs[i].ID < cs[j].ID
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s (%d spans)\n", td.ID, len(td.AllSpans))
	var walk func(parent int64, depth int)
	walk = func(parent int64, depth int) {
		for _, sp := range children[parent] {
			b.WriteString(strings.Repeat("  ", depth))
			fmt.Fprintf(&b, "%s  %s", sp.Name, sp.Duration.Round(time.Microsecond))
			for _, k := range sortedKeys(sp.Attrs) {
				fmt.Fprintf(&b, "  %s=%s", k, sp.Attrs[k])
			}
			b.WriteByte('\n')
			walk(sp.ID, depth+1)
		}
	}
	walk(0, 1)
	return b.String()
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
