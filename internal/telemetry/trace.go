package telemetry

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key=value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// String builds a string attr.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attr.
func Int(key string, v int) Attr { return Attr{Key: key, Value: strconv.Itoa(v)} }

// SpanData is one finished span of a trace. Parent is 0 for a true
// root; a remote-child segment root carries the parent span ID from the
// upstream process, which resolves once the segments merge.
type SpanData struct {
	ID     int64     `json:"id"`
	Parent int64     `json:"parent"` // 0 for the root span
	Name   string    `json:"name"`
	Start  time.Time `json:"start"`
	// Duration marshals as integer nanoseconds.
	Duration time.Duration     `json:"duration_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// TraceSummary identifies one recent trace without its span payload.
type TraceSummary struct {
	ID    string    `json:"id"`
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	// Duration marshals as integer nanoseconds.
	Duration time.Duration     `json:"duration_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Spans    int               `json:"spans"`
}

// TraceData is one complete trace: the root span's identity plus every
// finished span, in end order.
type TraceData struct {
	TraceSummary
	AllSpans []SpanData `json:"all_spans"`
	// Partial marks a merge that is provably missing spans: orphaned
	// parents or no true root. The usual cause is ring eviction (see
	// Tracer.Evicted) or a backend segment the gateway couldn't reach.
	Partial bool `json:"partial,omitempty"`
	// OrphanSpans counts spans whose parent is absent from the merged
	// span set (segment roots whose upstream span is missing).
	OrphanSpans int `json:"orphan_spans,omitempty"`
}

// trace accumulates the spans of one process-local segment of a trace.
// Spans append on End under mu (parallel P&R workers end spans
// concurrently); when the segment root ends, the accumulated spans are
// committed to the tracer's ring. A cross-process trace is several such
// segments sharing one trace ID — Get reassembles them.
type trace struct {
	id     string
	tracer *Tracer

	mu    sync.Mutex
	spans []SpanData
	done  bool
}

// Span is a live (unfinished) span. A nil *Span is a valid no-op receiver:
// call sites instrument unconditionally and pay one nil check when tracing
// is off.
type Span struct {
	t      *trace
	id     int64
	parent int64
	name   string
	start  time.Time
	// root marks the segment root: the span whose End commits the
	// segment. Remote-child segment roots have a nonzero parent (the
	// upstream span), so parent==0 cannot identify them.
	root bool

	mu    sync.Mutex
	attrs map[string]string
}

// Tracer records completed trace segments into a bounded ring (oldest
// evicted first).
type Tracer struct {
	// evicted counts segments overwritten by the ring — the
	// vital_trace_evicted_total source. Atomic: read lock-free at scrape
	// time while commits hold mu.
	evicted atomic.Uint64

	mu    sync.Mutex
	limit int
	// ring is circular once full; next is the oldest slot.
	ring []TraceData
	next int
}

// Evicted reports how many committed segments the ring has overwritten
// since the tracer was created. A nonzero value means GET /trace/{id}
// answers may be partial: a multi-segment trace can lose its early
// segments while later ones survive.
func (tr *Tracer) Evicted() uint64 {
	if tr == nil {
		return 0
	}
	return tr.evicted.Load()
}

// newTraceID returns a random 32-hex-char trace ID. Randomness (rather
// than the PR 4 per-process counter) keeps IDs collision-free when
// segments from several processes merge under one trace.
func newTraceID() string {
	hi, lo := rand.Uint64(), rand.Uint64()
	for hi == 0 && lo == 0 {
		hi, lo = rand.Uint64(), rand.Uint64()
	}
	return fmt.Sprintf("%016x%016x", hi, lo)
}

// newSpanID returns a random nonzero span ID. 63-bit so it survives the
// int64 JSON round trip; random so span IDs from different processes
// never collide within a merged trace.
func newSpanID() int64 {
	for {
		if id := int64(rand.Uint64() >> 1); id != 0 {
			return id
		}
	}
}

// DefaultTraceLimit is the number of recent traces a tracer retains.
const DefaultTraceLimit = 256

// NewTracer returns a tracer retaining up to limit recent traces
// (limit <= 0 selects DefaultTraceLimit).
func NewTracer(limit int) *Tracer {
	if limit <= 0 {
		limit = DefaultTraceLimit
	}
	return &Tracer{limit: limit}
}

// Start begins a new trace rooted at a span with the given name. Safe on a
// nil tracer, which returns a nil (no-op) span.
func (tr *Tracer) Start(name string, attrs ...Attr) *Span {
	if tr == nil {
		return nil
	}
	t := &trace{id: newTraceID(), tracer: tr}
	return &Span{t: t, id: newSpanID(), root: true, name: name, start: time.Now(), attrs: attrMap(attrs)}
}

// StartRemote begins a new segment of an existing trace: a root-like
// span that commits independently but carries the caller's trace ID and
// parents itself under the remote span. This is the continuation point
// for both cross-process hops (vitald continuing a vitalgw submit) and
// async boundaries (a queued ticket outliving its HTTP request). An
// invalid context falls back to a fresh root trace.
func (tr *Tracer) StartRemote(name string, sc SpanContext, attrs ...Attr) *Span {
	if tr == nil {
		return nil
	}
	if !sc.Valid() {
		return tr.Start(name, attrs...)
	}
	t := &trace{id: sc.TraceID, tracer: tr}
	return &Span{t: t, id: newSpanID(), parent: sc.SpanID, root: true, name: name, start: time.Now(), attrs: attrMap(attrs)}
}

// StartSpan begins the most-connected span the context allows: a child
// of the context's live span, else a remote child of the context's
// propagated span context, else a fresh root.
func (tr *Tracer) StartSpan(ctx context.Context, name string, attrs ...Attr) *Span {
	if tr == nil {
		return nil
	}
	if sp := SpanFromContext(ctx); sp != nil {
		return sp.Child(name, attrs...)
	}
	if sc, ok := RemoteFromContext(ctx); ok {
		return tr.StartRemote(name, sc, attrs...)
	}
	return tr.Start(name, attrs...)
}

// StartLinked begins a NEW segment linked under the context's span
// identity (live span or propagated context), else a fresh root. Unlike
// StartSpan it never joins the live span's segment — the span it
// returns outlives the request that spawned it (an async ticket crosses
// the HTTP response boundary), so it must commit independently.
func (tr *Tracer) StartLinked(ctx context.Context, name string, attrs ...Attr) *Span {
	if tr == nil {
		return nil
	}
	if sp := SpanFromContext(ctx); sp != nil {
		return tr.StartRemote(name, sp.Context(), attrs...)
	}
	if sc, ok := RemoteFromContext(ctx); ok {
		return tr.StartRemote(name, sc, attrs...)
	}
	return tr.Start(name, attrs...)
}

func attrMap(attrs []Attr) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// TraceID returns the ID of the span's trace ("" on a nil span).
func (sp *Span) TraceID() string {
	if sp == nil {
		return ""
	}
	return sp.t.id
}

// Child begins a sub-span. Safe on a nil span (returns nil).
func (sp *Span) Child(name string, attrs ...Attr) *Span {
	return sp.ChildAt(name, time.Now(), attrs...)
}

// ChildAt begins a sub-span with an explicit start time, for spans whose
// real beginning predates the code observing them — the async worker
// opens the queue.wait span backdated to the ticket's enqueue instant.
func (sp *Span) ChildAt(name string, start time.Time, attrs ...Attr) *Span {
	if sp == nil {
		return nil
	}
	return &Span{t: sp.t, id: newSpanID(), parent: sp.id, name: name, start: start, attrs: attrMap(attrs)}
}

// Context returns the span's propagatable identity (zero on nil).
func (sp *Span) Context() SpanContext {
	if sp == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: sp.t.id, SpanID: sp.id, Sampled: true}
}

// SetAttr annotates the span. Safe on a nil span.
func (sp *Span) SetAttr(key, value string) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.attrs == nil {
		sp.attrs = make(map[string]string, 1)
	}
	sp.attrs[key] = value
	sp.mu.Unlock()
}

// End finishes the span, recording it into its trace; ending the root span
// commits the whole trace to the tracer's ring. Safe on a nil span; ending
// twice records twice (don't).
func (sp *Span) End() {
	if sp == nil {
		return
	}
	d := time.Since(sp.start)
	sp.mu.Lock()
	attrs := sp.attrs
	sp.attrs = nil
	sp.mu.Unlock()
	data := SpanData{ID: sp.id, Parent: sp.parent, Name: sp.name, Start: sp.start, Duration: d, Attrs: attrs}
	t := sp.t
	t.mu.Lock()
	if !t.done {
		t.spans = append(t.spans, data)
	}
	if !sp.root {
		t.mu.Unlock()
		return
	}
	t.done = true
	spans := t.spans
	t.spans = nil
	t.mu.Unlock()
	t.tracer.commit(TraceData{
		TraceSummary: TraceSummary{
			ID: t.id, Name: sp.name, Start: sp.start, Duration: d,
			Attrs: attrs, Spans: len(spans),
		},
		AllSpans: spans,
	})
}

func (tr *Tracer) commit(td TraceData) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.ring) < tr.limit {
		tr.ring = append(tr.ring, td)
		return
	}
	tr.ring[tr.next] = td
	tr.next = (tr.next + 1) % tr.limit
	tr.evicted.Add(1)
}

// Get returns a completed trace by ID. When several segments of the
// trace committed locally (an HTTP request segment plus the async
// ticket segment it spawned), they merge into one span set.
func (tr *Tracer) Get(id string) (TraceData, bool) {
	if tr == nil {
		return TraceData{}, false
	}
	tr.mu.Lock()
	var segs []TraceData
	for i := range tr.ring {
		if tr.ring[i].ID == id {
			segs = append(segs, tr.ring[i])
		}
	}
	tr.mu.Unlock()
	if len(segs) == 0 {
		return TraceData{}, false
	}
	return MergeTraces(segs), true
}

// MergeTraces reassembles trace segments (possibly from different
// processes) into one trace. Spans deduplicate by span ID; the summary
// comes from the true root's segment (the one containing a Parent==0
// span), falling back to the earliest-started segment; the merged
// duration covers the whole journey, first span start to last span end.
// Callers guarantee all segments share one trace ID.
func MergeTraces(segs []TraceData) TraceData {
	if len(segs) == 0 {
		return TraceData{}
	}
	summary := segs[0]
	rooted := false
	var spans []SpanData
	seen := map[int64]bool{}
	for _, seg := range segs {
		segRooted := false
		for _, sp := range seg.AllSpans {
			if sp.Parent == 0 {
				segRooted = true
			}
			if !seen[sp.ID] {
				seen[sp.ID] = true
				spans = append(spans, sp)
			}
		}
		if segRooted && !rooted {
			summary, rooted = seg, true
		} else if !rooted && seg.Start.Before(summary.Start) {
			summary = seg
		}
	}
	sort.Slice(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].ID < spans[j].ID
	})
	first, last := summary.Start, summary.Start.Add(summary.Duration)
	orphans := 0
	for _, sp := range spans {
		if sp.Start.Before(first) {
			first = sp.Start
		}
		if end := sp.Start.Add(sp.Duration); end.After(last) {
			last = end
		}
		if sp.Parent != 0 && !seen[sp.Parent] {
			orphans++
		}
	}
	return TraceData{
		TraceSummary: TraceSummary{
			ID: summary.ID, Name: summary.Name, Start: first, Duration: last.Sub(first),
			Attrs: summary.Attrs, Spans: len(spans),
		},
		AllSpans:    spans,
		Partial:     orphans > 0 || !rooted,
		OrphanSpans: orphans,
	}
}

// Recent returns summaries of the most recent completed traces, newest
// first, at most max (max <= 0 returns everything retained).
func (tr *Tracer) Recent(max int) []TraceSummary {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := len(tr.ring)
	if max > 0 && max < n {
		n = max
	}
	out := make([]TraceSummary, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the newest slot (next-1 once wrapped,
		// len-1 while still growing).
		idx := (tr.next + len(tr.ring) - 1 - i + len(tr.ring)) % len(tr.ring)
		out = append(out, tr.ring[idx].TraceSummary)
	}
	return out
}

// ContextWithSpan returns a context carrying the span; workers retrieve it
// with SpanFromContext (or StartChild) to attach fan-out spans to the right
// parent across goroutines.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

type spanCtxKey struct{}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// StartChild begins a child of the context's span (nil, and a no-op, when
// the context carries none).
func StartChild(ctx context.Context, name string, attrs ...Attr) *Span {
	return SpanFromContext(ctx).Child(name, attrs...)
}

// Tree renders the trace as an indented stage tree — the `vitalctl trace`
// view. Children sort by start time (then span ID) under their parent, so
// the serial stages read top to bottom and parallel fan-out spans group
// under their fan-out parent.
func (td *TraceData) Tree() string {
	known := map[int64]bool{}
	for _, sp := range td.AllSpans {
		known[sp.ID] = true
	}
	children := map[int64][]SpanData{}
	for _, sp := range td.AllSpans {
		parent := sp.Parent
		if !known[parent] {
			// A segment root whose upstream span lives in a process we
			// haven't merged (or was evicted) still renders, as a root.
			parent = 0
		}
		children[parent] = append(children[parent], sp)
	}
	for _, cs := range children {
		sort.Slice(cs, func(i, j int) bool {
			if !cs[i].Start.Equal(cs[j].Start) {
				return cs[i].Start.Before(cs[j].Start)
			}
			return cs[i].ID < cs[j].ID
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s (%d spans)", td.ID, len(td.AllSpans))
	if td.Partial {
		// Eviction or an unreachable segment left holes: say so instead of
		// rendering a mysteriously contiguous tree.
		fmt.Fprintf(&b, "  [partial: %d orphaned span(s)]", td.OrphanSpans)
	}
	b.WriteByte('\n')
	var walk func(parent int64, depth int)
	walk = func(parent int64, depth int) {
		for _, sp := range children[parent] {
			b.WriteString(strings.Repeat("  ", depth))
			fmt.Fprintf(&b, "%s  %s", sp.Name, sp.Duration.Round(time.Microsecond))
			for _, k := range sortedKeys(sp.Attrs) {
				fmt.Fprintf(&b, "  %s=%s", k, sp.Attrs[k])
			}
			b.WriteByte('\n')
			walk(sp.ID, depth+1)
		}
	}
	walk(0, 1)
	return b.String()
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
