// Go-runtime self-metrics: goroutine count, heap footprint, and GC pause
// distribution, registered as ordinary vital_go_* families so the TSDB
// scrape loop samples process health alongside the domain series —
// soak/replay curves then show whether a throughput dip was the scheduler
// or the collector.
package telemetry

import (
	"runtime"
	"sync"
	"time"
)

// gcPauseBuckets spans the pauses a healthy Go collector produces (tens
// of microseconds) up to the pathological ones worth alerting on.
var gcPauseBuckets = []float64{1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1}

// runtimeSampler feeds the vital_go_* families. Gauges read fresh
// MemStats on every scrape; the pause histogram is fed incrementally by
// draining the MemStats pause ring — each GC cycle's pause is observed
// exactly once, so the histogram is a true distribution, not a gauge.
type runtimeSampler struct {
	mu        sync.Mutex
	lastNumGC uint32
	started   bool
	pauses    *Histogram

	memMu   sync.Mutex
	memAt   time.Time
	memStat runtime.MemStats
}

// mem returns MemStats at most one refresh per millisecond — three
// GaugeFunc callbacks per scrape must not mean three stop-the-world
// ReadMemStats calls.
func (rs *runtimeSampler) mem() runtime.MemStats {
	rs.memMu.Lock()
	defer rs.memMu.Unlock()
	if now := time.Now(); now.Sub(rs.memAt) > time.Millisecond {
		runtime.ReadMemStats(&rs.memStat)
		rs.memAt = now
	}
	return rs.memStat
}

// drainPauses observes every GC pause since the previous call. The first
// call only records the watermark — historical pauses predate the
// registration and would skew the window. The ring holds 256 entries;
// more than 256 cycles between scrapes loses the oldest, which at any
// sane scrape cadence means the process was not being scraped at all.
func (rs *runtimeSampler) drainPauses() {
	m := rs.mem()
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.started {
		rs.started = true
		rs.lastNumGC = m.NumGC
		return
	}
	from := rs.lastNumGC
	if m.NumGC-from > 256 {
		from = m.NumGC - 256
	}
	for i := from; i < m.NumGC; i++ {
		rs.pauses.Observe(float64(m.PauseNs[i%256]) / 1e9)
	}
	rs.lastNumGC = m.NumGC
}

// RegisterRuntimeMetrics adds the Go runtime's health to reg:
//
//	vital_go_goroutines        live goroutines
//	vital_go_heap_bytes        bytes of live heap (HeapAlloc)
//	vital_go_gc_cycles_total   completed GC cycles
//	vital_go_gc_pause_seconds  stop-the-world pause distribution
//
// Call once per registry, before the scrape loop starts; the pause
// histogram catches up on each scrape via the gc_cycles callback.
func RegisterRuntimeMetrics(reg *Registry) {
	rs := &runtimeSampler{}
	rs.pauses = reg.Histogram("vital_go_gc_pause_seconds",
		"Stop-the-world GC pause durations.", gcPauseBuckets)
	reg.GaugeFunc("vital_go_goroutines", "Live goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	reg.GaugeFunc("vital_go_heap_bytes", "Live heap bytes (HeapAlloc).", func() float64 {
		m := rs.mem()
		return float64(m.HeapAlloc)
	})
	reg.CounterFunc("vital_go_gc_cycles_total", "Completed GC cycles.", func() float64 {
		// Piggyback the pause drain on the counter read: every scrape that
		// samples gc_cycles also folds the new pauses into the histogram.
		rs.drainPauses()
		m := rs.mem()
		return float64(m.NumGC)
	})
}
