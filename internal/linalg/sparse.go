// Package linalg provides the sparse symmetric linear algebra used by the
// quadratic global placer (Section 4.2). The paper solves its placement
// linear systems with the Eigen C++ library; this package is the stdlib-only
// substitute: a compressed-sparse-row symmetric positive-definite matrix and
// a Jacobi-preconditioned conjugate-gradient solver.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Triplet is one (row, col, value) coordinate entry used to assemble a
// sparse matrix. Duplicate coordinates are summed on assembly, matching the
// usual finite-element/placement assembly style.
type Triplet struct {
	Row, Col int
	Val      float64
}

// CSR is a compressed-sparse-row matrix. For the placement systems the
// matrix is symmetric positive definite; CSR itself does not enforce
// symmetry but the solver assumes it.
type CSR struct {
	N      int
	RowPtr []int
	Col    []int
	Val    []float64
}

// FromTriplets assembles an n×n CSR matrix from coordinate entries, summing
// duplicates. Entries outside the n×n range cause an error.
func FromTriplets(n int, ts []Triplet) (*CSR, error) {
	for _, t := range ts {
		if t.Row < 0 || t.Row >= n || t.Col < 0 || t.Col >= n {
			return nil, fmt.Errorf("linalg: triplet (%d,%d) outside %d×%d", t.Row, t.Col, n, n)
		}
	}
	sorted := make([]Triplet, len(ts))
	copy(sorted, ts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &CSR{N: n, RowPtr: make([]int, n+1)}
	for i := 0; i < len(sorted); {
		j := i
		v := 0.0
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			v += sorted[j].Val
			j++
		}
		if v != 0 {
			m.Col = append(m.Col, sorted[i].Col)
			m.Val = append(m.Val, v)
			m.RowPtr[sorted[i].Row+1]++
		}
		i = j
	}
	for r := 0; r < n; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	return m, nil
}

// NNZ returns the number of stored (non-zero) entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// MulVec computes dst = m · x. dst and x must both have length N and must
// not alias.
func (m *CSR) MulVec(dst, x []float64) {
	if len(dst) != m.N || len(x) != m.N {
		panic("linalg: MulVec dimension mismatch")
	}
	for r := 0; r < m.N; r++ {
		s := 0.0
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			s += m.Val[i] * x[m.Col[i]]
		}
		dst[r] = s
	}
}

// Diagonal extracts the main diagonal.
func (m *CSR) Diagonal() []float64 {
	d := make([]float64, m.N)
	for r := 0; r < m.N; r++ {
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			if m.Col[i] == r {
				d[r] = m.Val[i]
			}
		}
	}
	return d
}

// At returns the entry (r, c), zero if not stored. Intended for tests and
// diagnostics, not inner loops.
func (m *CSR) At(r, c int) float64 {
	for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
		if m.Col[i] == c {
			return m.Val[i]
		}
	}
	return 0
}

// CGOptions controls the conjugate-gradient solver.
type CGOptions struct {
	// Tol is the relative residual tolerance ‖b − Ax‖ / ‖b‖ at which the
	// iteration stops. Zero means 1e-8.
	Tol float64
	// MaxIter caps iterations. Zero means 4·N.
	MaxIter int
}

// ErrNoConvergence is returned when CG does not reach the tolerance within
// the iteration budget. The best iterate found is still written to x.
var ErrNoConvergence = errors.New("linalg: conjugate gradient did not converge")

// SolveCG solves m·x = b for symmetric positive-definite m using
// Jacobi-preconditioned conjugate gradients. The initial content of x is
// used as the starting guess (warm start across placement iterations).
// It returns the iteration count used.
func SolveCG(m *CSR, x, b []float64, opt CGOptions) (int, error) {
	if len(x) != m.N || len(b) != m.N {
		return 0, fmt.Errorf("linalg: SolveCG dimension mismatch: n=%d len(x)=%d len(b)=%d", m.N, len(x), len(b))
	}
	tol := opt.Tol
	if tol == 0 {
		tol = 1e-8
	}
	maxIter := opt.MaxIter
	if maxIter == 0 {
		maxIter = 4 * m.N
	}
	n := m.N
	inv := make([]float64, n)
	for i, d := range m.Diagonal() {
		if d <= 0 {
			// Anchored placement matrices are strictly diagonally dominant;
			// a non-positive diagonal means an unanchored free variable.
			return 0, fmt.Errorf("linalg: non-positive diagonal at row %d (%g): matrix not SPD", i, d)
		}
		inv[i] = 1 / d
	}

	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	m.MulVec(ap, x)
	normB := 0.0
	for i := 0; i < n; i++ {
		r[i] = b[i] - ap[i]
		normB += b[i] * b[i]
	}
	normB = math.Sqrt(normB)
	if normB == 0 {
		for i := range x {
			x[i] = 0
		}
		return 0, nil
	}
	rz := 0.0
	for i := 0; i < n; i++ {
		z[i] = inv[i] * r[i]
		p[i] = z[i]
		rz += r[i] * z[i]
	}
	for iter := 1; iter <= maxIter; iter++ {
		m.MulVec(ap, p)
		pap := 0.0
		for i := 0; i < n; i++ {
			pap += p[i] * ap[i]
		}
		if pap <= 0 {
			return iter, fmt.Errorf("linalg: p·Ap = %g ≤ 0 at iter %d: matrix not SPD", pap, iter)
		}
		alpha := rz / pap
		normR := 0.0
		for i := 0; i < n; i++ {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
			normR += r[i] * r[i]
		}
		if math.Sqrt(normR)/normB <= tol {
			return iter, nil
		}
		rzNew := 0.0
		for i := 0; i < n; i++ {
			z[i] = inv[i] * r[i]
			rzNew += r[i] * z[i]
		}
		beta := rzNew / rz
		rz = rzNew
		for i := 0; i < n; i++ {
			p[i] = z[i] + beta*p[i]
		}
	}
	return maxIter, ErrNoConvergence
}

// Residual returns ‖b − m·x‖₂ for diagnostics and tests.
func Residual(m *CSR, x, b []float64) float64 {
	ax := make([]float64, m.N)
	m.MulVec(ax, x)
	s := 0.0
	for i := range ax {
		d := b[i] - ax[i]
		s += d * d
	}
	return math.Sqrt(s)
}
