package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromTripletsSumsDuplicates(t *testing.T) {
	m, err := FromTriplets(2, []Triplet{
		{0, 0, 1}, {0, 0, 2}, {0, 1, -1}, {1, 0, -1}, {1, 1, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.At(0, 0); got != 3 {
		t.Fatalf("At(0,0) = %v, want 3", got)
	}
	if m.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4", m.NNZ())
	}
}

func TestFromTripletsRejectsOutOfRange(t *testing.T) {
	if _, err := FromTriplets(2, []Triplet{{2, 0, 1}}); err == nil {
		t.Fatal("accepted out-of-range triplet")
	}
}

func TestFromTripletsDropsExplicitZeros(t *testing.T) {
	m, err := FromTriplets(2, []Triplet{{0, 0, 1}, {0, 1, 5}, {0, 1, -5}, {1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2 (cancelled entry kept?)", m.NNZ())
	}
}

func TestMulVec(t *testing.T) {
	// [[2, -1], [-1, 2]] · [1, 1] = [1, 1]
	m, _ := FromTriplets(2, []Triplet{{0, 0, 2}, {0, 1, -1}, {1, 0, -1}, {1, 1, 2}})
	dst := make([]float64, 2)
	m.MulVec(dst, []float64{1, 1})
	if dst[0] != 1 || dst[1] != 1 {
		t.Fatalf("MulVec = %v", dst)
	}
}

// laplacianSystem builds the anchored graph Laplacian of a random connected
// graph — exactly the structure quadratic placement produces. anchorW > 0
// guarantees SPD.
func laplacianSystem(rng *rand.Rand, n int, anchorW float64) (*CSR, []float64) {
	var ts []Triplet
	for i := 1; i < n; i++ {
		j := rng.Intn(i) // connect to an earlier vertex: connected graph
		w := 0.5 + rng.Float64()*2
		ts = append(ts,
			Triplet{i, i, w}, Triplet{j, j, w},
			Triplet{i, j, -w}, Triplet{j, i, -w})
	}
	// extra random edges
	for e := 0; e < n; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		w := 0.5 + rng.Float64()
		ts = append(ts,
			Triplet{i, i, w}, Triplet{j, j, w},
			Triplet{i, j, -w}, Triplet{j, i, -w})
	}
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		ts = append(ts, Triplet{i, i, anchorW})
		b[i] = anchorW * (rng.Float64()*10 - 5) // anchor target positions
	}
	m, err := FromTriplets(n, ts)
	if err != nil {
		panic(err)
	}
	return m, b
}

func TestSolveCGOnAnchoredLaplacian(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, b := laplacianSystem(rng, 200, 0.1)
	x := make([]float64, 200)
	iters, err := SolveCG(m, x, b, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatalf("SolveCG: %v (after %d iters)", err, iters)
	}
	res := Residual(m, x, b)
	normB := 0.0
	for _, v := range b {
		normB += v * v
	}
	normB = math.Sqrt(normB)
	if res/normB > 1e-9 {
		t.Fatalf("relative residual %g too large", res/normB)
	}
}

func TestSolveCGWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m, b := laplacianSystem(rng, 300, 0.05)
	cold := make([]float64, 300)
	coldIters, err := SolveCG(m, cold, b, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Warm start from the exact solution should converge almost immediately.
	warm := make([]float64, 300)
	copy(warm, cold)
	warmIters, err := SolveCG(m, warm, b, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if warmIters >= coldIters {
		t.Fatalf("warm start took %d iters, cold took %d", warmIters, coldIters)
	}
}

func TestSolveCGZeroRHS(t *testing.T) {
	m, _ := FromTriplets(2, []Triplet{{0, 0, 1}, {1, 1, 1}})
	x := []float64{3, 4}
	iters, err := SolveCG(m, x, []float64{0, 0}, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if iters != 0 || x[0] != 0 || x[1] != 0 {
		t.Fatalf("zero RHS: x=%v iters=%d", x, iters)
	}
}

func TestSolveCGRejectsNonSPD(t *testing.T) {
	m, _ := FromTriplets(2, []Triplet{{0, 0, -1}, {1, 1, 1}})
	x := make([]float64, 2)
	if _, err := SolveCG(m, x, []float64{1, 1}, CGOptions{}); err == nil {
		t.Fatal("accepted matrix with negative diagonal")
	}
}

func TestSolveCGDimensionMismatch(t *testing.T) {
	m, _ := FromTriplets(2, []Triplet{{0, 0, 1}, {1, 1, 1}})
	if _, err := SolveCG(m, make([]float64, 3), make([]float64, 2), CGOptions{}); err == nil {
		t.Fatal("accepted mismatched x length")
	}
}

// Property: for random anchored Laplacians, CG converges and the solution
// satisfies the normal equations to tolerance.
func TestQuickCGConverges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(80)
		m, b := laplacianSystem(rng, n, 0.2)
		x := make([]float64, n)
		if _, err := SolveCG(m, x, b, CGOptions{Tol: 1e-9}); err != nil {
			return false
		}
		normB := 0.0
		for _, v := range b {
			normB += v * v
		}
		return Residual(m, x, b) <= 1e-6*math.Sqrt(normB)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
