package partition

import (
	"sort"

	"vital/internal/netlist"
)

// netSpan records which clusters a multi-cluster net touches; single-cluster
// nets can never be cut and are dropped. The driver cluster is first.
type netSpan struct {
	width    int
	driver   int   // driver cluster
	clusters []int // all distinct clusters on the net (driver included)
}

// buildSpans projects nets onto clusters.
func buildSpans(n *netlist.Netlist, clusterOf []int) []netSpan {
	var spans []netSpan
	seen := map[int]bool{}
	for i := range n.Nets {
		t := &n.Nets[i]
		if t.Driver == netlist.NoCell {
			continue
		}
		dc := clusterOf[t.Driver]
		clear(seen)
		seen[dc] = true
		cl := []int{dc}
		for _, s := range t.Sinks {
			c := clusterOf[s]
			if !seen[c] {
				seen[c] = true
				cl = append(cl, c)
			}
		}
		if len(cl) > 1 {
			spans = append(spans, netSpan{width: t.Width, driver: dc, clusters: cl})
		}
	}
	return spans
}

// channelCounts computes per-block cut bandwidth in bits (ingress and
// egress) for the current assignment: a cut net contributes its width to
// every foreign block it enters and once to its driver block's egress.
// Nets narrower than minWidth are sideband signals (enables, status bits):
// the interface generator aggregates them into the shared control channel,
// so they do not consume data-channel bandwidth.
func channelCounts(spans []netSpan, assign []int, numBlocks, minWidth int) (in, out []int) {
	in = make([]int, numBlocks)
	out = make([]int, numBlocks)
	for i := range spans {
		spanContribution(&spans[i], assign, minWidth, in, out, +1)
	}
	return in, out
}

// spanContribution adds (sign=+1) or removes (sign=-1) one span's cut
// contribution to the per-block ingress/egress bit counts.
func spanContribution(sp *netSpan, assign []int, minWidth int, in, out []int, sign int) {
	if sp.width < minWidth {
		return
	}
	db := assign[sp.driver]
	entered := false
	for _, c := range sp.clusters {
		b := assign[c]
		if b == db {
			continue
		}
		dup := false
		for _, c2 := range sp.clusters {
			if c2 == c {
				break
			}
			if assign[c2] == b {
				dup = true
				break
			}
		}
		if !dup {
			in[b] += sign * sp.width
			entered = true
		}
	}
	if entered {
		out[db] += sign * sp.width
	}
}

// violations sums how far the per-block cut bandwidth exceeds the budget.
func violations(in, out []int, maxIn, maxOut int) int {
	v := 0
	for b := range in {
		if maxIn >= 0 && in[b] > maxIn {
			v += in[b] - maxIn
		}
		if maxOut >= 0 && out[b] > maxOut {
			v += out[b] - maxOut
		}
	}
	return v
}

// repairChannels greedily consolidates cut nets so that every block's
// ingress/egress cut bandwidth fits the latency-insensitive channel budget.
// Narrow nets are attacked first (they contribute channels while carrying
// little bandwidth, so merging them is nearly free). Moves respect block
// capacity; the pass stops when violations reach zero or no move helps.
// Bookkeeping is incremental: only the spans incident to moved clusters are
// re-evaluated.
func (l *legalizer) repairChannels(spans []netSpan, maxIn, maxOut, minWidth, passes int) {
	if maxIn < 0 && maxOut < 0 {
		return
	}
	// Index spans by cluster for incremental updates.
	clusterSpans := make([][]int, len(l.clusters))
	for si := range spans {
		for _, c := range spans[si].clusters {
			clusterSpans[c] = append(clusterSpans[c], si)
		}
	}
	in, out := channelCounts(spans, l.assign, l.numBlock, minWidth)
	cur := violations(in, out, maxIn, maxOut)

	order := make([]int, len(spans))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return spans[order[a]].width < spans[order[b]].width })

	for p := 0; p < passes && cur > 0; p++ {
		improved := false
		for _, si := range order {
			sp := &spans[si]
			if sp.width < minWidth {
				continue
			}
			blocks := map[int]netlist.Resources{}
			for _, c := range sp.clusters {
				b := l.assign[c]
				blocks[b] = blocks[b].Add(l.clusters[c].Res)
			}
			if len(blocks) < 2 {
				continue
			}
			// Candidate targets: consolidate the whole net into the block
			// already carrying the most of it.
			type cand struct {
				block int
				res   netlist.Resources
			}
			var cands []cand
			for b, r := range blocks {
				cands = append(cands, cand{b, r})
			}
			sort.Slice(cands, func(a, b int) bool {
				if cands[a].res.LUTs != cands[b].res.LUTs {
					return cands[a].res.LUTs > cands[b].res.LUTs
				}
				return cands[a].block < cands[b].block
			})
			for _, target := range cands {
				if newViol, ok := l.tryConsolidate(sp, target.block, spans, clusterSpans, minWidth, maxIn, maxOut, in, out, cur); ok {
					cur = newViol
					improved = true
					break
				}
			}
			if cur == 0 {
				return
			}
		}
		if !improved {
			return
		}
	}
}

// tryConsolidate moves every cluster of the span outside target into
// target, if capacity allows and total channel violations strictly
// decrease. The in/out arrays are updated incrementally; on rejection the
// move is fully reverted. It returns the new violation total and whether
// the move was kept.
func (l *legalizer) tryConsolidate(sp *netSpan, target int, spans []netSpan, clusterSpans [][]int, minWidth, maxIn, maxOut int, in, out []int, curViol int) (int, bool) {
	var movers []int
	var need netlist.Resources
	for _, c := range sp.clusters {
		if l.assign[c] != target {
			movers = append(movers, c)
			need = need.Add(l.clusters[c].Res)
		}
	}
	if len(movers) == 0 {
		return curViol, false
	}
	if !l.usage[target].Add(need).FitsIn(l.capacity) {
		return curViol, false
	}
	// Collect affected spans (dedup via stamp map).
	affected := map[int]bool{}
	for _, c := range movers {
		for _, si := range clusterSpans[c] {
			affected[si] = true
		}
	}
	apply := func(toBlocks []int) {
		for si := range affected {
			spanContribution(&spans[si], l.assign, minWidth, in, out, -1)
		}
		for i, c := range movers {
			from := l.assign[c]
			l.usage[from] = l.usage[from].Sub(l.clusters[c].Res)
			l.assign[c] = toBlocks[i]
			l.usage[toBlocks[i]] = l.usage[toBlocks[i]].Add(l.clusters[c].Res)
		}
		for si := range affected {
			spanContribution(&spans[si], l.assign, minWidth, in, out, +1)
		}
	}
	prev := make([]int, len(movers))
	toTarget := make([]int, len(movers))
	for i, c := range movers {
		prev[i] = l.assign[c]
		toTarget[i] = target
	}
	apply(toTarget)
	if v := violations(in, out, maxIn, maxOut); v < curViol {
		return v, true
	}
	apply(prev)
	return curViol, false
}
