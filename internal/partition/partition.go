package partition

import (
	"errors"
	"fmt"
	"math/rand"

	"vital/internal/netlist"
)

// Config parameterizes the partitioner.
type Config struct {
	// BlockCapacity is the resource capacity of one virtual block
	// (Table 4 for the XCVU37P floorplan).
	BlockCapacity netlist.Resources
	// Alpha is the aspect-ratio weight α of Eq. 1/Eq. 3. Zero means 1.0.
	Alpha float64
	// MaxFanout caps net fanout for connectivity analysis (clock/reset
	// trees carry no locality). Zero means 64.
	MaxFanout int
	// PackBoundaryWidth keeps the packing stage from growing clusters
	// across nets at least this wide — wide buses are natural module
	// interfaces. Zero means 128; negative disables the filter.
	PackBoundaryWidth int
	// ClusterShrink divides BlockCapacity to obtain the packing cluster
	// capacity. Zero means 48 (≈48 clusters per full block).
	ClusterShrink int
	// GapTol terminates the anchored iteration when the relative gap
	// between legalized and relaxed wirelength drops below it. Zero means
	// the paper's 20%.
	GapTol float64
	// MaxIterations caps the step (2)/(3) iterations. Zero means 10.
	MaxIterations int
	// AnnealSweeps scales the annealing effort per legalization. Zero
	// means 12.
	AnnealSweeps int
	// MaxCutInBits / MaxCutOutBits bound the total width of cut data nets
	// entering/leaving one virtual block — the block's share of
	// latency-insensitive channel bandwidth. Zero means 448; negative
	// disables the check.
	MaxCutInBits  int
	MaxCutOutBits int
	// ChannelNetMinWidth is the width below which a cut net is treated as
	// a sideband signal aggregated into the shared control channel rather
	// than consuming data-channel bandwidth. Zero means 32; negative
	// counts every net.
	ChannelNetMinWidth int
	// Seed drives all stochastic stages.
	Seed int64
	// Restarts retries with a reseeded annealer when a block count
	// appears infeasible. Zero means 2.
	Restarts int
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 1
	}
	if c.MaxFanout == 0 {
		c.MaxFanout = 64
	}
	if c.PackBoundaryWidth == 0 {
		c.PackBoundaryWidth = 128
	}
	if c.ClusterShrink == 0 {
		c.ClusterShrink = 48
	}
	if c.GapTol == 0 {
		c.GapTol = 0.20
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 10
	}
	if c.AnnealSweeps == 0 {
		c.AnnealSweeps = 12
	}
	if c.MaxCutInBits == 0 {
		c.MaxCutInBits = 448
	}
	if c.MaxCutOutBits == 0 {
		c.MaxCutOutBits = 448
	}
	if c.ChannelNetMinWidth == 0 {
		c.ChannelNetMinWidth = 32
	}
	if c.Restarts == 0 {
		c.Restarts = 2
	}
	return c
}

// Result is a complete partition of a netlist into virtual blocks.
type Result struct {
	NumBlocks int
	// Clusters is the packing result; ClusterOf maps cell → cluster.
	Clusters  []*Cluster
	ClusterOf []int
	// BlockOf maps cluster → virtual block; CellBlock maps cell → block.
	BlockOf   []int
	CellBlock []int
	// CutWidth is the total inter-block width in bits; PerBlockInBits and
	// PerBlockOutBits give each block's ingress/egress cut bandwidth.
	CutWidth        int
	PerBlockInBits  []int
	PerBlockOutBits []int
	// Usage is the per-block resource usage.
	Usage []netlist.Resources
	// Iterations is the number of anchored placement iterations run.
	Iterations int
	// Legal reports capacity feasibility; ChannelsOK reports interface
	// bandwidth feasibility.
	Legal      bool
	ChannelsOK bool
	// Stochastic reports whether simulated annealing actually ran; when
	// false the result is deterministic and reseeded restarts are
	// pointless.
	Stochastic bool
}

// Feasible reports whether the partition satisfies both block capacity and
// channel-bandwidth budgets.
func (r *Result) Feasible() bool { return r.Legal && r.ChannelsOK }

// ErrNoFeasiblePartition is returned by Auto when no block count within the
// limit yields a feasible partition.
var ErrNoFeasiblePartition = errors.New("partition: no feasible block count found")

// prepared caches the block-count-independent stages (packing, cluster
// graph, net spans) so Auto can sweep block counts cheaply.
type prepared struct {
	n         *netlist.Netlist
	cfg       Config
	clusters  []*Cluster
	clusterOf []int
	g         *clusterGraph
	spans     []netSpan
}

// prepare runs packing and connectivity projection once.
func prepare(n *netlist.Netlist, cfg Config) (*prepared, error) {
	cfg = cfg.withDefaults()
	if cfg.BlockCapacity.IsZero() {
		return nil, errors.New("partition: BlockCapacity not set")
	}
	packAdj := n.AdjacencyCapped(cfg.MaxFanout, cfg.PackBoundaryWidth)
	clusterCap := netlist.Resources{
		LUTs:   max(cfg.BlockCapacity.LUTs/cfg.ClusterShrink, 1),
		DFFs:   max(cfg.BlockCapacity.DFFs/cfg.ClusterShrink, 1),
		DSPs:   max(cfg.BlockCapacity.DSPs/cfg.ClusterShrink, 1),
		BRAMKb: max(cfg.BlockCapacity.BRAMKb/cfg.ClusterShrink, netlist.BRAMKb),
	}
	clusters := pack(n, packAdj, packConfig{
		capacity:  clusterCap,
		maxFanout: cfg.MaxFanout,
		seed:      cfg.Seed,
		mergeFrac: 0.25,
	})
	clusterOf := make([]int, n.NumCells())
	for _, cl := range clusters {
		for _, c := range cl.Cells {
			clusterOf[c] = cl.ID
		}
	}
	return &prepared{
		n:         n,
		cfg:       cfg,
		clusters:  clusters,
		clusterOf: clusterOf,
		g:         buildClusterGraph(n, clusterOf, len(clusters), cfg.MaxFanout),
		spans:     buildSpans(n, clusterOf),
	}, nil
}

// Partition splits the netlist into exactly numBlocks virtual blocks using
// the Section 4 algorithm. The result may be infeasible (Legal or
// ChannelsOK false) if numBlocks is too small; Auto searches for the
// smallest feasible count.
func Partition(n *netlist.Netlist, numBlocks int, cfg Config) (*Result, error) {
	p, err := prepare(n, cfg)
	if err != nil {
		return nil, err
	}
	return p.partition(numBlocks, p.cfg.Seed)
}

// partition runs the placement/legalization pipeline for one block count.
// The annealing seed is separate from the packing seed so restarts can
// explore different legalizations over the same packing.
func (p *prepared) partition(numBlocks int, seed int64) (*Result, error) {
	cfg := p.cfg
	if numBlocks < 1 {
		return nil, fmt.Errorf("partition: numBlocks must be >= 1, got %d", numBlocks)
	}
	clusters, g := p.clusters, p.g
	res := &Result{NumBlocks: numBlocks, Clusters: clusters, ClusterOf: p.clusterOf}

	// Step (1): unanchored quadratic solve, IO clusters pinned across the
	// placement span.
	nc := len(clusters)
	x := make([]float64, nc)
	y := make([]float64, nc)
	anchorX := make([]float64, nc)
	anchorY := make([]float64, nc)
	beta := make([]float64, nc)
	ioAnchors := map[int]float64{}
	var ioClusters []int
	for _, cl := range clusters {
		if cl.HasIO {
			ioClusters = append(ioClusters, cl.ID)
		}
	}
	for i, ci := range ioClusters {
		if len(ioClusters) == 1 {
			ioAnchors[ci] = float64(numBlocks) / 2
		} else {
			ioAnchors[ci] = float64(numBlocks) * float64(i) / float64(len(ioClusters)-1)
		}
	}
	if err := quadraticSolve(g, x, y, anchorX, anchorY, beta, ioAnchors, 1.0); err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(seed + 1))
	var best *legalizer
	bestWL := 0.0
	bestFeasible := false
	betaVal := 0.0
	// Infeasible block counts rarely become feasible after the first few
	// anchored iterations; cap the effort spent proving infeasibility.
	const infeasibleIterCap = 3
	for iter := 1; iter <= cfg.MaxIterations; iter++ {
		res.Iterations = iter
		// Step (2): legalize onto blocks and refine. The channel-repair
		// pass consolidates narrow cut nets so blocks stay within their
		// latency-insensitive bandwidth budget.
		leg := newLegalizer(clusters, g, numBlocks, cfg.BlockCapacity, cfg.Alpha, x, y, rng)
		if _, ran := leg.anneal(cfg.AnnealSweeps); ran {
			res.Stochastic = true
		}
		leg.refine(4)
		leg.repairChannels(p.spans, cfg.MaxCutInBits, cfg.MaxCutOutBits, cfg.ChannelNetMinWidth, 6)
		legalWL := leg.legalWirelength()
		cin, cout := channelCounts(p.spans, leg.assign, numBlocks, cfg.ChannelNetMinWidth)
		feasible := leg.isLegal() && violations(cin, cout, cfg.MaxCutInBits, cfg.MaxCutOutBits) == 0
		better := best == nil ||
			(feasible && !bestFeasible) ||
			(feasible == bestFeasible && legalWL < bestWL)
		if better && leg.isLegal() {
			best, bestWL, bestFeasible = leg, legalWL, feasible
		}
		// Step (4): β grows slowly across iterations to pull clusters away
		// from over-utilized blocks.
		if betaVal == 0 {
			betaVal = 0.05 * (1 + g.deg[maxDegIdx(g)]) / float64(nc)
		} else {
			betaVal *= 2
		}
		// Step (3): anchor every cluster to its legalized block center
		// (pseudo clusters/connections, Eq. 4) and re-solve.
		for ci := range clusters {
			anchorX[ci], anchorY[ci] = blockCenter(leg.assign[ci])
			beta[ci] = betaVal
		}
		if err := quadraticSolve(g, x, y, anchorX, anchorY, beta, ioAnchors, 1.0); err != nil {
			return nil, err
		}
		relaxedWL := g.wirelength(x, y, cfg.Alpha)
		if legalWL == 0 {
			break // nothing cut at all: done
		}
		gap := (legalWL - relaxedWL) / legalWL
		if gap < cfg.GapTol && bestFeasible {
			break
		}
		if !bestFeasible && iter >= infeasibleIterCap {
			break
		}
	}
	if best == nil {
		// No legal assignment found; report the last attempt for
		// diagnostics.
		best = newLegalizer(clusters, g, numBlocks, cfg.BlockCapacity, cfg.Alpha, x, y, rng)
		_, _ = best.anneal(cfg.AnnealSweeps * 2)
		best.refine(4)
		best.repairChannels(p.spans, cfg.MaxCutInBits, cfg.MaxCutOutBits, cfg.ChannelNetMinWidth, 6)
	}
	p.finalize(res, best)
	return res, nil
}

func maxDegIdx(g *clusterGraph) int {
	idx := 0
	for i, d := range g.deg {
		if d > g.deg[idx] {
			idx = i
		}
	}
	return idx
}

// finalize converts the legalizer state into the public result.
func (p *prepared) finalize(res *Result, leg *legalizer) {
	n, cfg := p.n, p.cfg
	res.BlockOf = leg.assign
	res.Usage = leg.usage
	res.Legal = leg.isLegal()
	res.CellBlock = make([]int, n.NumCells())
	for c := range res.CellBlock {
		res.CellBlock[c] = leg.assign[res.ClusterOf[c]]
	}
	res.CutWidth = n.CutWidth(res.CellBlock)
	res.PerBlockInBits, res.PerBlockOutBits = channelCounts(p.spans, leg.assign, res.NumBlocks, cfg.ChannelNetMinWidth)
	res.ChannelsOK = violations(res.PerBlockInBits, res.PerBlockOutBits, cfg.MaxCutInBits, cfg.MaxCutOutBits) == 0
}

// Auto finds the smallest feasible virtual-block count: it starts from the
// resource lower bound and increases until the Section 4 partitioner
// produces a partition that satisfies both capacity and channel-bandwidth
// budgets. maxBlocks bounds the search (0 means 64).
func Auto(n *netlist.Netlist, cfg Config, maxBlocks int) (*Result, error) {
	p, err := prepare(n, cfg)
	if err != nil {
		return nil, err
	}
	cfg = p.cfg
	if maxBlocks == 0 {
		maxBlocks = 64
	}
	lb := n.Resources().BlocksNeeded(cfg.BlockCapacity)
	if lb == 0 {
		lb = 1
	}
	for k := lb; k <= maxBlocks; k++ {
		for r := 0; r < cfg.Restarts; r++ {
			res, err := p.partition(k, cfg.Seed+int64(r)*7919)
			if err != nil {
				return nil, err
			}
			if res.Feasible() {
				return res, nil
			}
			if !res.Stochastic {
				break // deterministic outcome: reseeding cannot help
			}
		}
	}
	return nil, fmt.Errorf("%w (searched %d..%d)", ErrNoFeasiblePartition, lb, maxBlocks)
}
