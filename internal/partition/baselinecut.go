package partition

import (
	"errors"
	"fmt"
	"math/rand"

	"vital/internal/netlist"
)

// This file provides the §5.4 comparison baseline: the same packing and
// capacity constraints, but no placement-based optimization — clusters fill
// blocks contiguously in netlist order. The "required bandwidth of
// inter-block interconnections" is the peak per-block cut bandwidth, which
// is what sizes the latency-insensitive interface.

// BandwidthRequirement returns the maximum over blocks of ingress+egress
// cut bits for an arbitrary cell→block assignment, counting every net
// (sidebands included — they are physical wires the interface must carry).
func BandwidthRequirement(n *netlist.Netlist, cellBlock []int, numBlocks int) int {
	in := make([]int, numBlocks)
	out := make([]int, numBlocks)
	seen := map[int]bool{}
	for i := range n.Nets {
		t := &n.Nets[i]
		if t.Driver == netlist.NoCell {
			continue
		}
		db := cellBlock[t.Driver]
		clear(seen)
		for _, s := range t.Sinks {
			b := cellBlock[s]
			if b != db && !seen[b] {
				seen[b] = true
				in[b] += t.Width
			}
		}
		if len(seen) > 0 {
			out[db] += t.Width
		}
	}
	peak := 0
	for b := 0; b < numBlocks; b++ {
		if v := in[b] + out[b]; v > peak {
			peak = v
		}
	}
	return peak
}

// RandomBalanced produces a connectivity-blind ablation assignment: packed
// clusters are shuffled and fill blocks against balanced shares. It
// isolates the value of the quadratic-placement ordering: same packing,
// same capacity discipline, no placement information at all.
func RandomBalanced(n *netlist.Netlist, numBlocks int, cfg Config, seed int64) ([]int, error) {
	p, err := prepare(n, cfg)
	if err != nil {
		return nil, err
	}
	if numBlocks < 1 {
		return nil, fmt.Errorf("partition: numBlocks must be >= 1, got %d", numBlocks)
	}
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(len(p.clusters))
	var total netlist.Resources
	for _, cl := range p.clusters {
		total = total.Add(cl.Res)
	}
	share := netlist.Resources{
		LUTs:   (total.LUTs + numBlocks - 1) / numBlocks,
		DFFs:   (total.DFFs + numBlocks - 1) / numBlocks,
		DSPs:   (total.DSPs + numBlocks - 1) / numBlocks,
		BRAMKb: (total.BRAMKb + numBlocks - 1) / numBlocks,
	}
	usage := make([]netlist.Resources, numBlocks)
	assign := make([]int, len(p.clusters))
	blk := 0
	for _, ci := range order {
		if !usage[blk].Add(p.clusters[ci].Res).FitsIn(share) && blk < numBlocks-1 {
			blk++
		}
		assign[ci] = blk
		usage[blk] = usage[blk].Add(p.clusters[ci].Res)
	}
	cellBlock := make([]int, n.NumCells())
	for c := range cellBlock {
		cellBlock[c] = assign[p.clusterOf[c]]
	}
	return cellBlock, nil
}

// NaiveContiguous produces the unoptimized cell→block assignment: cells
// fill each block to capacity in netlist order (first fit), with no
// attraction packing and no placement information — the strategy a
// resource-only tool would use. It is the ablation baseline for the
// paper's 2.1× bandwidth-reduction claim.
func NaiveContiguous(n *netlist.Netlist, numBlocks int, cfg Config) ([]int, error) {
	cfg = cfg.withDefaults()
	if cfg.BlockCapacity.IsZero() {
		return nil, errors.New("partition: BlockCapacity not set")
	}
	if numBlocks < 1 {
		return nil, fmt.Errorf("partition: numBlocks must be >= 1, got %d", numBlocks)
	}
	cellBlock := make([]int, n.NumCells())
	var usage netlist.Resources
	blk := 0
	for c := range n.Cells {
		probe := usage
		probe.AddCell(n.Cells[c].Kind)
		if !probe.FitsIn(cfg.BlockCapacity) && blk < numBlocks-1 {
			blk++
			usage = netlist.Resources{}
			probe = netlist.Resources{}
			probe.AddCell(n.Cells[c].Kind)
		}
		usage = probe
		cellBlock[c] = blk
	}
	return cellBlock, nil
}
