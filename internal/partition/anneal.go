package partition

import (
	"math"
	"math/rand"

	"vital/internal/netlist"
)

// legalize is step (2) of §4.2: map each cluster's continuous position to a
// virtual block and run simulated annealing with the Eq. 3 cost
//
//	Cost = Σ(α|x_i−x'_i| + |y_i−y'_i|)/N_cluster + Σ f_i/N_block
//
// where f_i is a large penalty for over-utilized blocks. Blocks are laid
// out in a row: block k occupies x ∈ [k, k+1), y ∈ [0, 1).
type legalizer struct {
	clusters []*Cluster
	g        *clusterGraph
	numBlock int
	capacity netlist.Resources
	alpha    float64
	rng      *rand.Rand

	// Continuous positions from the quadratic solve (the x', y' of Eq. 3).
	px, py []float64

	assign []int // cluster -> block
	usage  []netlist.Resources
}

// overflowPenalty is the "large positive number" f_i outputs for an
// over-utilized block.
const overflowPenalty = 1e6

func newLegalizer(clusters []*Cluster, g *clusterGraph, numBlock int, capacity netlist.Resources, alpha float64, px, py []float64, rng *rand.Rand) *legalizer {
	l := &legalizer{
		clusters: clusters, g: g, numBlock: numBlock, capacity: capacity,
		alpha: alpha, rng: rng, px: px, py: py,
		assign: make([]int, len(clusters)),
		usage:  make([]netlist.Resources, numBlock),
	}
	// Initial assignment: clusters sorted by x fill blocks left to right.
	// Each block targets an equal share of the total demand (not its full
	// capacity): a balanced fill tracks the quadratic placement's natural
	// module boundaries, which the annealer then only needs to polish.
	order := make([]int, len(clusters))
	for i := range order {
		order[i] = i
	}
	sortByX(order, px)
	var total netlist.Resources
	for _, cl := range clusters {
		total = total.Add(cl.Res)
	}
	share := netlist.Resources{
		LUTs:   (total.LUTs + numBlock - 1) / numBlock,
		DFFs:   (total.DFFs + numBlock - 1) / numBlock,
		DSPs:   (total.DSPs + numBlock - 1) / numBlock,
		BRAMKb: (total.BRAMKb + numBlock - 1) / numBlock,
	}
	blk := 0
	for _, ci := range order {
		if !l.usage[blk].Add(clusters[ci].Res).FitsIn(share) && blk < numBlock-1 {
			blk++
		}
		l.assign[ci] = blk
		l.usage[blk] = l.usage[blk].Add(clusters[ci].Res)
	}
	return l
}

// sortByX orders cluster indices by their continuous x position
// (insertion sort: stable and deterministic).
func sortByX(order []int, px []float64) {
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && px[order[j]] < px[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
}

// blockCenter returns the center of block k in placement coordinates.
func blockCenter(k int) (float64, float64) { return float64(k) + 0.5, 0.5 }

// moveCost is the Eq. 3 displacement term for one cluster in a block.
func (l *legalizer) moveCost(ci, blk int) float64 {
	bx, by := blockCenter(blk)
	return l.alpha*math.Abs(l.px[ci]-bx) + math.Abs(l.py[ci]-by)
}

// overflow reports whether usage exceeds capacity (f_i > 0).
func (l *legalizer) overflow(u netlist.Resources) float64 {
	if u.FitsIn(l.capacity) {
		return 0
	}
	// Scale the penalty mildly with the amount of overflow so annealing
	// has a gradient to follow.
	return overflowPenalty * (1 + u.MaxRatio(l.capacity))
}

// cost evaluates the full Eq. 3 objective.
func (l *legalizer) cost() float64 {
	move := 0.0
	for ci := range l.clusters {
		move += l.moveCost(ci, l.assign[ci])
	}
	over := 0.0
	for _, u := range l.usage {
		over += l.overflow(u)
	}
	return move/float64(len(l.clusters)) + over/float64(l.numBlock)
}

// anneal runs the simulated-annealing schedule of §4.2 step (2) and
// returns the final cost plus whether the stochastic schedule actually ran.
// Per the paper, annealing exists to resolve over-utilization: when the
// snapped assignment is already legal it is left untouched (the Eq. 3
// optimum is the snap itself), and otherwise the best state seen during the
// schedule is restored at the end.
func (l *legalizer) anneal(sweeps int) (float64, bool) {
	if l.numBlock < 2 || len(l.clusters) == 0 || l.isLegal() {
		return l.cost(), false
	}
	cur := l.cost()
	bestCost := cur
	bestAssign := make([]int, len(l.assign))
	copy(bestAssign, l.assign)
	temp := cur/4 + 1e-3
	moves := sweeps * len(l.clusters)
	nc := float64(len(l.clusters))
	nb := float64(l.numBlock)
	for m := 0; m < moves; m++ {
		ci := l.rng.Intn(len(l.clusters))
		from := l.assign[ci]
		to := l.rng.Intn(l.numBlock)
		if to == from {
			continue
		}
		res := l.clusters[ci].Res
		oldFrom, oldTo := l.usage[from], l.usage[to]
		newFrom, newTo := oldFrom.Sub(res), oldTo.Add(res)
		delta := (l.moveCost(ci, to)-l.moveCost(ci, from))/nc +
			(l.overflow(newFrom)+l.overflow(newTo)-l.overflow(oldFrom)-l.overflow(oldTo))/nb
		if delta <= 0 || l.rng.Float64() < math.Exp(-delta/temp) {
			l.assign[ci] = to
			l.usage[from], l.usage[to] = newFrom, newTo
			cur += delta
			if cur < bestCost {
				bestCost = cur
				copy(bestAssign, l.assign)
			}
		}
		if m%len(l.clusters) == len(l.clusters)-1 {
			temp *= 0.85
		}
	}
	if bestCost < cur {
		l.setAssign(bestAssign)
		cur = bestCost
	}
	return cur, true
}

// setAssign overwrites the assignment and recomputes usage.
func (l *legalizer) setAssign(assign []int) {
	copy(l.assign, assign)
	for b := range l.usage {
		l.usage[b] = netlist.Resources{}
	}
	for ci, b := range l.assign {
		l.usage[b] = l.usage[b].Add(l.clusters[ci].Res)
	}
}

// refine is the density-preserving recovery pass (the POLAR-style
// refinement cited in §4.2): greedy single-cluster moves that strictly
// reduce connected wirelength while preserving legality.
func (l *legalizer) refine(passes int) {
	adj := make([][]struct {
		other int
		w     float64
	}, len(l.clusters))
	for e, w := range l.g.edges {
		adj[e[0]] = append(adj[e[0]], struct {
			other int
			w     float64
		}{e[1], w})
		adj[e[1]] = append(adj[e[1]], struct {
			other int
			w     float64
		}{e[0], w})
	}
	for p := 0; p < passes; p++ {
		improved := false
		for ci := range l.clusters {
			from := l.assign[ci]
			// Weighted mean block of the neighbours.
			sw, sx := 0.0, 0.0
			for _, e := range adj[ci] {
				bx, _ := blockCenter(l.assign[e.other])
				sw += e.w
				sx += e.w * bx
			}
			if sw == 0 {
				continue
			}
			to := int(sx / sw)
			if to < 0 {
				to = 0
			}
			if to >= l.numBlock {
				to = l.numBlock - 1
			}
			if to == from {
				continue
			}
			res := l.clusters[ci].Res
			if !l.usage[to].Add(res).FitsIn(l.capacity) {
				continue
			}
			// Cut-weight change if we move.
			gain := 0.0
			for _, e := range adj[ci] {
				ob := l.assign[e.other]
				if ob == from {
					gain -= e.w
				}
				if ob == to {
					gain += e.w
				}
			}
			if gain > 0 {
				l.usage[from] = l.usage[from].Sub(res)
				l.usage[to] = l.usage[to].Add(res)
				l.assign[ci] = to
				improved = true
			}
		}
		if !improved {
			break
		}
	}
}

// legalWirelength evaluates Eq. 1 at the legalized (block-center) positions.
func (l *legalizer) legalWirelength() float64 {
	x := make([]float64, len(l.clusters))
	y := make([]float64, len(l.clusters))
	for ci := range l.clusters {
		x[ci], y[ci] = blockCenter(l.assign[ci])
	}
	return l.g.wirelength(x, y, l.alpha)
}

// isLegal reports whether no block is over-utilized.
func (l *legalizer) isLegal() bool {
	for _, u := range l.usage {
		if !u.FitsIn(l.capacity) {
			return false
		}
	}
	return true
}
