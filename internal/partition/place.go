package partition

import (
	"fmt"

	"vital/internal/linalg"
	"vital/internal/netlist"
)

// clusterGraph is the weighted connectivity between packed clusters, the
// w_ij of Eq. 1.
type clusterGraph struct {
	n     int
	edges map[[2]int]float64 // i < j
	// deg is the summed incident weight per cluster (Laplacian diagonal).
	deg []float64
}

// buildClusterGraph projects the netlist connectivity onto clusters.
func buildClusterGraph(n *netlist.Netlist, clusterOf []int, numClusters, maxFanout int) *clusterGraph {
	g := &clusterGraph{n: numClusters, edges: map[[2]int]float64{}, deg: make([]float64, numClusters)}
	for i := range n.Nets {
		t := &n.Nets[i]
		if t.Driver == netlist.NoCell {
			continue
		}
		if maxFanout > 0 && len(t.Sinks) > maxFanout {
			continue
		}
		a := clusterOf[t.Driver]
		for _, s := range t.Sinks {
			b := clusterOf[s]
			if a == b || a < 0 || b < 0 {
				continue
			}
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			g.edges[[2]int{lo, hi}] += float64(t.Width)
		}
	}
	for e, w := range g.edges {
		g.deg[e[0]] += w
		g.deg[e[1]] += w
	}
	return g
}

// wirelength evaluates Eq. 1: L = Σ w_ij [α (x_i−x_j)² + (y_i−y_j)²].
func (g *clusterGraph) wirelength(x, y []float64, alpha float64) float64 {
	L := 0.0
	for e, w := range g.edges {
		dx := x[e[0]] - x[e[1]]
		dy := y[e[0]] - y[e[1]]
		L += w * (alpha*dx*dx + dy*dy)
	}
	return L
}

// quadraticSolve performs step (1)/(3) of §4.2: minimize Eq. 4's anchored
// wirelength by solving the two independent linear systems (∂L/∂x = 0,
// ∂L/∂y = 0). anchorX/anchorY give the pseudo-cluster positions x″, y″
// (step 3); beta[i] is the per-cluster anchor weight β_ii (zero on the
// first iteration, when no pseudo clusters exist yet). ioAnchors adds
// fixed-position pulls for IO clusters so the unanchored first solve is
// non-singular (the netlist's external ports are at fixed pad locations).
func quadraticSolve(g *clusterGraph, x, y, anchorX, anchorY, beta []float64, ioAnchorX map[int]float64, ioW float64) error {
	n := g.n
	ts := make([]linalg.Triplet, 0, len(g.edges)*4+n)
	for e, w := range g.edges {
		i, j := e[0], e[1]
		ts = append(ts,
			linalg.Triplet{Row: i, Col: i, Val: w},
			linalg.Triplet{Row: j, Col: j, Val: w},
			linalg.Triplet{Row: i, Col: j, Val: -w},
			linalg.Triplet{Row: j, Col: i, Val: -w})
	}
	bx := make([]float64, n)
	by := make([]float64, n)
	// A small uniform regularizer keeps isolated clusters well-defined.
	const eps = 1e-6
	for i := 0; i < n; i++ {
		w := beta[i] + eps
		ts = append(ts, linalg.Triplet{Row: i, Col: i, Val: w})
		bx[i] = beta[i]*anchorX[i] + eps*anchorX[i]
		by[i] = beta[i]*anchorY[i] + eps*anchorY[i]
	}
	for i, ax := range ioAnchorX {
		ts = append(ts, linalg.Triplet{Row: i, Col: i, Val: ioW})
		bx[i] += ioW * ax
		// IO pads sit at mid-height.
		by[i] += ioW * 0.5
	}
	m, err := linalg.FromTriplets(n, ts)
	if err != nil {
		return err
	}
	if _, err := linalg.SolveCG(m, x, bx, linalg.CGOptions{Tol: 1e-7}); err != nil {
		return fmt.Errorf("partition: x placement solve: %w", err)
	}
	if _, err := linalg.SolveCG(m, y, by, linalg.CGOptions{Tol: 1e-7}); err != nil {
		return fmt.Errorf("partition: y placement solve: %w", err)
	}
	return nil
}
