package partition

import (
	"fmt"
	"sort"

	"vital/internal/linalg"
	"vital/internal/netlist"
)

// clusterGraph is the weighted connectivity between packed clusters, the
// w_ij of Eq. 1.
type clusterGraph struct {
	n     int
	edges map[[2]int]float64 // i < j
	// deg is the summed incident weight per cluster (Laplacian diagonal).
	deg []float64
}

// buildClusterGraph projects the netlist connectivity onto clusters.
func buildClusterGraph(n *netlist.Netlist, clusterOf []int, numClusters, maxFanout int) *clusterGraph {
	g := &clusterGraph{n: numClusters, edges: map[[2]int]float64{}, deg: make([]float64, numClusters)}
	for i := range n.Nets {
		t := &n.Nets[i]
		if t.Driver == netlist.NoCell {
			continue
		}
		if maxFanout > 0 && len(t.Sinks) > maxFanout {
			continue
		}
		a := clusterOf[t.Driver]
		for _, s := range t.Sinks {
			b := clusterOf[s]
			if a == b || a < 0 || b < 0 {
				continue
			}
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			g.edges[[2]int{lo, hi}] += float64(t.Width)
		}
	}
	for _, e := range g.sortedEdges() {
		g.deg[e.lo] += e.w
		g.deg[e.hi] += e.w
	}
	return g
}

// edge is one cluster-graph edge with a stable (lo, hi) identity.
type edge struct {
	lo, hi int
	w      float64
}

// sortedEdges returns the edges in (lo, hi) order. The graph is stored as a
// map, whose iteration order is randomized; every consumer that folds edge
// weights into floating-point sums or emits matrix triplets must walk this
// deterministic order, or placements drift between runs of the same input.
func (g *clusterGraph) sortedEdges() []edge {
	out := make([]edge, 0, len(g.edges))
	for e, w := range g.edges {
		out = append(out, edge{lo: e[0], hi: e[1], w: w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].lo != out[j].lo {
			return out[i].lo < out[j].lo
		}
		return out[i].hi < out[j].hi
	})
	return out
}

// wirelength evaluates Eq. 1: L = Σ w_ij [α (x_i−x_j)² + (y_i−y_j)²].
func (g *clusterGraph) wirelength(x, y []float64, alpha float64) float64 {
	L := 0.0
	for _, e := range g.sortedEdges() {
		dx := x[e.lo] - x[e.hi]
		dy := y[e.lo] - y[e.hi]
		L += e.w * (alpha*dx*dx + dy*dy)
	}
	return L
}

// quadraticSolve performs step (1)/(3) of §4.2: minimize Eq. 4's anchored
// wirelength by solving the two independent linear systems (∂L/∂x = 0,
// ∂L/∂y = 0). anchorX/anchorY give the pseudo-cluster positions x″, y″
// (step 3); beta[i] is the per-cluster anchor weight β_ii (zero on the
// first iteration, when no pseudo clusters exist yet). ioAnchors adds
// fixed-position pulls for IO clusters so the unanchored first solve is
// non-singular (the netlist's external ports are at fixed pad locations).
func quadraticSolve(g *clusterGraph, x, y, anchorX, anchorY, beta []float64, ioAnchorX map[int]float64, ioW float64) error {
	n := g.n
	ts := make([]linalg.Triplet, 0, len(g.edges)*4+n)
	for _, e := range g.sortedEdges() {
		i, j, w := e.lo, e.hi, e.w
		ts = append(ts,
			linalg.Triplet{Row: i, Col: i, Val: w},
			linalg.Triplet{Row: j, Col: j, Val: w},
			linalg.Triplet{Row: i, Col: j, Val: -w},
			linalg.Triplet{Row: j, Col: i, Val: -w})
	}
	bx := make([]float64, n)
	by := make([]float64, n)
	// A small uniform regularizer keeps isolated clusters well-defined.
	const eps = 1e-6
	for i := 0; i < n; i++ {
		w := beta[i] + eps
		ts = append(ts, linalg.Triplet{Row: i, Col: i, Val: w})
		bx[i] = beta[i]*anchorX[i] + eps*anchorX[i]
		by[i] = beta[i]*anchorY[i] + eps*anchorY[i]
	}
	ioClusters := make([]int, 0, len(ioAnchorX))
	for i := range ioAnchorX {
		ioClusters = append(ioClusters, i)
	}
	sort.Ints(ioClusters)
	for _, i := range ioClusters {
		ts = append(ts, linalg.Triplet{Row: i, Col: i, Val: ioW})
		bx[i] += ioW * ioAnchorX[i]
		// IO pads sit at mid-height.
		by[i] += ioW * 0.5
	}
	m, err := linalg.FromTriplets(n, ts)
	if err != nil {
		return err
	}
	if _, err := linalg.SolveCG(m, x, bx, linalg.CGOptions{Tol: 1e-7}); err != nil {
		return fmt.Errorf("partition: x placement solve: %w", err)
	}
	if _, err := linalg.SolveCG(m, y, by, linalg.CGOptions{Tol: 1e-7}); err != nil {
		return fmt.Errorf("partition: y placement solve: %w", err)
	}
	return nil
}
