// Package partition implements ViTAL's custom partition tool (Section 4):
// a placement-based algorithm that splits a technology-mapped netlist into
// a group of virtual blocks while minimizing inter-block connections and
// keeping every block within capacity.
//
// The pipeline follows the paper exactly:
//
//  1. Packing (§4.1): greedy clustering by attraction score (Algorithm 1).
//  2. Global placement (§4.2): quadratic placement by solving a linear
//     system (step 1), simulated-annealing legalization with the Eq. 3 cost
//     (step 2), pseudo-cluster anchoring per Eq. 4 (step 3), iterated with
//     increasing anchor weight until the wirelength gap closes below 20%
//     (step 4).
package partition

import (
	"math/rand"
	"sort"

	"vital/internal/netlist"
)

// Cluster is a packed group of primitives — the unit of global placement.
type Cluster struct {
	ID    int
	Cells []netlist.CellID
	Res   netlist.Resources
	// HasIO marks clusters containing top-level IO cells; they anchor the
	// quadratic placement.
	HasIO bool
}

// packConfig controls the greedy packing stage.
type packConfig struct {
	capacity  netlist.Resources // per-cluster capacity
	maxFanout int               // adjacency fanout cap
	seed      int64
	mergeFrac float64 // clusters below this utilization get merged
}

// pack greedily clusters the netlist per Algorithm 1: start a cluster from
// a random unpacked seed primitive, then repeatedly absorb the candidate
// with the highest attraction score |S2|/|S1| (fraction of the candidate's
// neighbours already in the cluster) until the cluster reaches capacity.
func pack(n *netlist.Netlist, adj [][]netlist.Edge, cfg packConfig) []*Cluster {
	rng := rand.New(rand.NewSource(cfg.seed))
	packed := make([]int, n.NumCells())
	for i := range packed {
		packed[i] = -1
	}
	degree := make([]int, n.NumCells())
	for c := range adj {
		degree[c] = len(adj[c])
	}

	// Visit seeds in random order (the paper picks seeds randomly).
	order := rng.Perm(n.NumCells())
	var clusters []*Cluster

	// inCluster[c] counts how many of cell c's neighbours are in the
	// cluster currently being grown (reset lazily via stamps).
	inCluster := make([]int, n.NumCells())
	stamp := make([]int, n.NumCells())
	curStamp := 0

	for _, seedIdx := range order {
		seed := netlist.CellID(seedIdx)
		if packed[seed] != -1 {
			continue
		}
		curStamp++
		cl := &Cluster{ID: len(clusters)}
		// frontier holds the unpacked neighbours of the growing cluster.
		frontier := make(map[netlist.CellID]struct{})
		addCell := func(c netlist.CellID) {
			packed[c] = cl.ID
			cl.Cells = append(cl.Cells, c)
			cl.Res.AddCell(n.Cells[c].Kind)
			if n.Cells[c].Kind == netlist.KindIO {
				cl.HasIO = true
			}
			delete(frontier, c)
			for _, e := range adj[c] {
				if packed[e.To] == -1 {
					if stamp[e.To] != curStamp {
						stamp[e.To] = curStamp
						inCluster[e.To] = 0
					}
					inCluster[e.To]++
					frontier[e.To] = struct{}{}
				}
			}
		}
		addCell(seed)

		for len(frontier) > 0 {
			// Select the frontier candidate with the highest attraction
			// score (Algorithm 1); ties break to the lowest cell ID so the
			// result is deterministic for a given seed.
			best := netlist.NoCell
			bestScore := -1.0
			for cand := range frontier {
				if packed[cand] != -1 {
					delete(frontier, cand)
					continue
				}
				score := float64(inCluster[cand]) / float64(max(degree[cand], 1))
				if score > bestScore || (score == bestScore && cand < best) {
					bestScore, best = score, cand
				}
			}
			if best == netlist.NoCell {
				break
			}
			probe := cl.Res
			probe.AddCell(n.Cells[best].Kind)
			if !probe.FitsIn(cfg.capacity) {
				// Capacity reached for this candidate's resource class;
				// exclude it from this cluster and continue with others.
				delete(frontier, best)
				continue
			}
			addCell(best)
		}
		clusters = append(clusters, cl)
	}

	return mergeSmall(n, adj, clusters, packed, cfg)
}

// mergeSmall folds under-filled clusters into their most-connected
// neighbour cluster with room — the final step of §4.1 ("small clusters
// are merged into other clusters to reduce the number of clusters").
func mergeSmall(n *netlist.Netlist, adj [][]netlist.Edge, clusters []*Cluster, packed []int, cfg packConfig) []*Cluster {
	// Order small clusters by size ascending so the smallest merge first.
	idx := make([]int, 0, len(clusters))
	for i, cl := range clusters {
		if cl.Res.MaxRatio(cfg.capacity) < cfg.mergeFrac {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		return len(clusters[idx[a]].Cells) < len(clusters[idx[b]].Cells)
	})
	alive := make([]bool, len(clusters))
	for i := range alive {
		alive[i] = true
	}
	for _, i := range idx {
		cl := clusters[i]
		if !alive[i] {
			continue
		}
		// Find the most-connected other cluster that can absorb us.
		conn := map[int]int{}
		for _, c := range cl.Cells {
			for _, e := range adj[c] {
				o := packed[e.To]
				if o != i && o >= 0 && alive[o] {
					conn[o] += e.Weight
				}
			}
		}
		best, bestW := -1, 0
		for o, w := range conn {
			if w > bestW && cl.Res.Add(clusters[o].Res).FitsIn(cfg.capacity) {
				best, bestW = o, w
			}
		}
		if best == -1 {
			continue
		}
		dst := clusters[best]
		for _, c := range cl.Cells {
			packed[c] = best
		}
		dst.Cells = append(dst.Cells, cl.Cells...)
		dst.Res = dst.Res.Add(cl.Res)
		dst.HasIO = dst.HasIO || cl.HasIO
		alive[i] = false
	}
	// Compact.
	out := make([]*Cluster, 0, len(clusters))
	for i, cl := range clusters {
		if alive[i] {
			cl.ID = len(out)
			out = append(out, cl)
		}
	}
	return out
}
