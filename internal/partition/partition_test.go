package partition

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"vital/internal/hls"
	"vital/internal/netlist"
	"vital/internal/workload"
)

// blockCap is the XCVU37P physical-block capacity (Table 4).
var blockCap = netlist.Resources{LUTs: 79200, DFFs: 158400, DSPs: 580, BRAMKb: 4320}

func synthSpec(t testing.TB, bench string, v workload.Variant) *netlist.Netlist {
	t.Helper()
	b, err := workload.Find(bench)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hls.Synthesize(workload.BuildDesign(workload.Spec{Benchmark: b, Variant: v}))
	if err != nil {
		t.Fatal(err)
	}
	return res.Netlist
}

func TestPartitionSingleBlockTrivial(t *testing.T) {
	n := synthSpec(t, "lenet", workload.Small)
	res, err := Partition(n, 1, Config{BlockCapacity: blockCap, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible() {
		t.Fatal("single-block partition of a one-block design must be feasible")
	}
	if res.CutWidth != 0 {
		t.Fatalf("cut width = %d on one block", res.CutWidth)
	}
}

func TestPartitionInvalidArgs(t *testing.T) {
	n := netlist.New("empty")
	if _, err := Partition(n, 0, Config{BlockCapacity: blockCap}); err == nil {
		t.Fatal("accepted numBlocks=0")
	}
	if _, err := Partition(n, 1, Config{}); err == nil {
		t.Fatal("accepted zero capacity")
	}
}

func TestPartitionEveryCellAssignedExactlyOnce(t *testing.T) {
	n := synthSpec(t, "alexnet", workload.Small)
	res, err := Partition(n, 2, Config{BlockCapacity: blockCap, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CellBlock) != n.NumCells() {
		t.Fatal("CellBlock length mismatch")
	}
	for c, b := range res.CellBlock {
		if b < 0 || b >= res.NumBlocks {
			t.Fatalf("cell %d assigned to block %d", c, b)
		}
	}
	// Usage must equal the sum of assigned cells per block.
	check := make([]netlist.Resources, res.NumBlocks)
	for c, b := range res.CellBlock {
		check[b].AddCell(n.Cells[c].Kind)
	}
	for b := range check {
		if check[b] != res.Usage[b] {
			t.Fatalf("block %d usage %+v, recomputed %+v", b, res.Usage[b], check[b])
		}
	}
}

func TestPartitionNeverOverfillsWhenLegal(t *testing.T) {
	n := synthSpec(t, "cifar10", workload.Small)
	res, err := Partition(n, 2, Config{BlockCapacity: blockCap, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Legal {
		t.Fatal("expected legal 2-block partition for cifar10-S")
	}
	for b, u := range res.Usage {
		if !u.FitsIn(blockCap) {
			t.Fatalf("block %d over capacity: %+v", b, u)
		}
	}
}

func TestAutoMatchesPaperBlockCounts(t *testing.T) {
	// The headline Table 2 reproduction: the block count chosen by the
	// compiler equals the paper's #Block (one processing unit per block)
	// for a sample across families and variants.
	cases := []struct {
		bench string
		v     workload.Variant
	}{
		{"lenet", workload.Small},
		{"lenet", workload.Medium},
		{"alexnet", workload.Small},
		{"svhn", workload.Medium},
		{"nin", workload.Medium},
	}
	for _, c := range cases {
		b, _ := workload.Find(c.bench)
		spec := workload.Spec{Benchmark: b, Variant: c.v}
		n := synthSpec(t, c.bench, c.v)
		res, err := Auto(n, Config{BlockCapacity: blockCap, Seed: 11}, 16)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name(), err)
		}
		if res.NumBlocks != spec.PaperBlocks() {
			t.Errorf("%s: Auto chose %d blocks, paper reports %d", spec.Name(), res.NumBlocks, spec.PaperBlocks())
		}
	}
}

func TestAutoRespectsChannelBudget(t *testing.T) {
	n := synthSpec(t, "lenet", workload.Medium)
	res, err := Auto(n, Config{BlockCapacity: blockCap, Seed: 2}, 16)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < res.NumBlocks; b++ {
		if res.PerBlockInBits[b] > 448 || res.PerBlockOutBits[b] > 448 {
			t.Fatalf("block %d exceeds channel bandwidth budget: in=%d out=%d bits", b, res.PerBlockInBits[b], res.PerBlockOutBits[b])
		}
	}
}

func TestPartitionReducesBandwidthRequirement(t *testing.T) {
	// The §5.4 claim: the algorithmic optimization reduces the required
	// inter-block interface bandwidth (2.1× on average in the paper).
	n := synthSpec(t, "alexnet", workload.Medium)
	cfg := Config{BlockCapacity: blockCap, Seed: 17}
	res, err := Auto(n, cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	opt := BandwidthRequirement(n, res.CellBlock, res.NumBlocks)
	if opt <= 0 {
		t.Fatal("multi-block partition should have nonzero cut bandwidth")
	}
	naiveAssign, err := NaiveContiguous(n, res.NumBlocks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	naive := BandwidthRequirement(n, naiveAssign, res.NumBlocks)
	if float64(naive) < 1.5*float64(opt) {
		t.Fatalf("optimized requirement %d bits not clearly better than naive %d", opt, naive)
	}
}

func TestPackRespectsClusterCapacity(t *testing.T) {
	n := synthSpec(t, "lenet", workload.Small)
	adj := n.Adjacency(64)
	capacity := netlist.Resources{LUTs: 100, DFFs: 200, DSPs: 2, BRAMKb: 72}
	clusters := pack(n, adj, packConfig{capacity: capacity, maxFanout: 64, seed: 9, mergeFrac: 0.25})
	seen := make([]bool, n.NumCells())
	for _, cl := range clusters {
		if !cl.Res.FitsIn(capacity) {
			t.Fatalf("cluster %d exceeds capacity: %+v", cl.ID, cl.Res)
		}
		var r netlist.Resources
		for _, c := range cl.Cells {
			if seen[c] {
				t.Fatalf("cell %d in two clusters", c)
			}
			seen[c] = true
			r.AddCell(n.Cells[c].Kind)
		}
		if r != cl.Res {
			t.Fatalf("cluster %d resource bookkeeping wrong", cl.ID)
		}
	}
	for c, ok := range seen {
		if !ok && n.Cells[c].Kind != netlist.KindIO {
			t.Fatalf("cell %d unpacked", c)
		}
		_ = c
	}
}

func TestPartitionDeterministicForSeed(t *testing.T) {
	n := synthSpec(t, "svhn", workload.Small)
	a, err := Partition(n, 1, Config{BlockCapacity: blockCap, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(n, 1, Config{BlockCapacity: blockCap, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.CutWidth != b.CutWidth || len(a.Clusters) != len(b.Clusters) {
		t.Fatalf("nondeterministic: cut %d vs %d, clusters %d vs %d",
			a.CutWidth, b.CutWidth, len(a.Clusters), len(b.Clusters))
	}
	for i := range a.CellBlock {
		if a.CellBlock[i] != b.CellBlock[i] {
			t.Fatalf("assignment differs at cell %d", i)
		}
	}
}

func TestAutoInfeasibleReportsError(t *testing.T) {
	// A design whose single net web exceeds any channel budget at >1 block
	// but is too big for 1 block: impossible within maxBlocks=1.
	n := synthSpec(t, "vgg16", workload.Large)
	_, err := Auto(n, Config{BlockCapacity: blockCap, Seed: 1, AnnealSweeps: 2, MaxIterations: 2}, 1)
	if err == nil {
		t.Fatal("expected infeasibility error with maxBlocks=1")
	}
}

// Property: on random operator-graph designs (not just the DNN suite), Auto
// either returns a feasible partition satisfying every invariant or a clean
// infeasibility error — never a panic or a corrupt result.
func TestQuickAutoInvariantsOnRandomDesigns(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized partition sweep skipped in -short mode")
	}
	rngSeed := int64(0)
	for trial := 0; trial < 6; trial++ {
		rngSeed += 7
		rng := rand.New(rand.NewSource(rngSeed))
		d := hls.NewDesign(fmt.Sprintf("rand%d", trial))
		nOps := 2 + rng.Intn(5)
		var prev hls.OpID = -1
		for i := 0; i < nOps; i++ {
			op := d.AddOp(hls.OpConv, fmt.Sprintf("op%d", i), fmt.Sprintf("l%d", i), hls.Budget{
				LUTs:  rng.Intn(40000),
				DFFs:  rng.Intn(40000),
				DSPs:  rng.Intn(200),
				BRAMs: rng.Intn(100),
			})
			if prev >= 0 {
				d.Connect(prev, op, 1+rng.Intn(256))
			}
			prev = op
		}
		synth, err := hls.Synthesize(d)
		if err != nil {
			t.Fatal(err)
		}
		n := synth.Netlist
		res, err := Auto(n, Config{BlockCapacity: blockCap, Seed: rngSeed, AnnealSweeps: 4, MaxIterations: 4}, 12)
		if err != nil {
			if !errors.Is(err, ErrNoFeasiblePartition) {
				t.Fatalf("trial %d: unexpected error %v", trial, err)
			}
			continue
		}
		if !res.Feasible() {
			t.Fatalf("trial %d: Auto returned infeasible result without error", trial)
		}
		usage := make([]netlist.Resources, res.NumBlocks)
		for c, b := range res.CellBlock {
			if b < 0 || b >= res.NumBlocks {
				t.Fatalf("trial %d: cell %d in block %d", trial, c, b)
			}
			usage[b].AddCell(n.Cells[c].Kind)
		}
		for b := range usage {
			if !usage[b].FitsIn(blockCap) {
				t.Fatalf("trial %d: block %d over capacity %+v", trial, b, usage[b])
			}
		}
		if BandwidthRequirement(n, res.CellBlock, res.NumBlocks) < 0 {
			t.Fatalf("trial %d: negative bandwidth", trial)
		}
	}
}
