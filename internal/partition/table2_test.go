package partition

import (
	"testing"

	"vital/internal/hls"
	"vital/internal/workload"
)

// TestAutoMatchesPaperBlockCountsFull checks the compiler-chosen block
// count against Table 2 for the entire benchmark suite. This is the slow,
// exhaustive version of TestAutoMatchesPaperBlockCounts; skipped with -short.
func TestAutoMatchesPaperBlockCountsFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 2 sweep skipped in -short mode")
	}
	for _, s := range workload.AllSpecs() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			t.Parallel()
			res, err := hls.Synthesize(workload.BuildDesign(s))
			if err != nil {
				t.Fatal(err)
			}
			r, err := Auto(res.Netlist, Config{BlockCapacity: blockCap, Seed: 11}, 16)
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			if r.NumBlocks != s.PaperBlocks() {
				t.Errorf("%s: Auto chose %d blocks, paper reports %d", s.Name(), r.NumBlocks, s.PaperBlocks())
			}
		})
	}
}
